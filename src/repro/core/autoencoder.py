"""The convolutional auto-encoder used for data augmentation (Fig. 3).

The encoder stacks 5x5 convolutions each followed by 2x2 max-pooling;
the decoder mirrors it with convolutions and nearest-neighbour
upsampling ("deconvolution and upsampling replacing the convolution and
maxpooling operations", Sec. III-B).  The bottleneck activation is the
latent representation ``z`` that Algorithm 1 perturbs with Gaussian
noise to synthesize new wafers.

Fig. 3's exact filter counts are not legible from the paper text; this
reproduction defaults to (16, 8, 8), a standard light-weight choice
that reconstructs 64x64 wafer maps well.  The counts are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..data.dataset import WaferDataset
from ..data.wafer import grid_to_tensor

__all__ = ["AutoencoderConfig", "ConvAutoencoder", "train_autoencoder"]


@dataclass
class AutoencoderConfig:
    """Hyper-parameters of the convolutional auto-encoder."""

    input_size: int = 64
    channels: Tuple[int, ...] = (16, 8, 8)
    kernel_size: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        stages = len(self.channels)
        if self.input_size % (2 ** stages) != 0:
            raise ValueError(
                f"input_size {self.input_size} must be divisible by {2 ** stages} "
                f"for {stages} pooling stages"
            )

    @property
    def latent_spatial(self) -> int:
        return self.input_size // (2 ** len(self.channels))

    @property
    def latent_shape(self) -> Tuple[int, int, int]:
        """Shape of ``z`` (channels, height, width)."""
        return (self.channels[-1], self.latent_spatial, self.latent_spatial)


class ConvAutoencoder(nn.Module):
    """Encoder-decoder CNN reconstructing 3-level wafer images.

    ``forward`` returns the reconstruction in [0, 1] (sigmoid output);
    :meth:`encode` / :meth:`decode` expose the two halves for
    Algorithm 1's latent-space perturbation.
    """

    def __init__(self, config: Optional[AutoencoderConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else AutoencoderConfig()
        rng = np.random.default_rng(self.config.seed)
        k = self.config.kernel_size

        encoder_layers = []
        in_channels = 1
        for channels in self.config.channels:
            encoder_layers.append(nn.Conv2D(in_channels, channels, k, padding="same", rng=rng))
            encoder_layers.append(nn.ReLU())
            encoder_layers.append(nn.MaxPool2D(2))
            in_channels = channels
        self.encoder = nn.Sequential(*encoder_layers)

        decoder_layers = []
        reversed_channels = list(reversed(self.config.channels))
        for index, channels in enumerate(reversed_channels):
            out_channels = reversed_channels[index + 1] if index + 1 < len(reversed_channels) else 1
            decoder_layers.append(nn.UpSample2D(2))
            decoder_layers.append(nn.Conv2D(channels, out_channels, k, padding="same", rng=rng))
            if index + 1 < len(reversed_channels):
                decoder_layers.append(nn.ReLU())
            else:
                decoder_layers.append(nn.Sigmoid())
        self.decoder = nn.Sequential(*decoder_layers)

    def encode(self, x: nn.Tensor) -> nn.Tensor:
        """Map ``(N, 1, H, W)`` inputs to latent ``(N, C, h, w)``."""
        return self.encoder(x)

    def decode(self, z: nn.Tensor) -> nn.Tensor:
        """Map latents back to ``(N, 1, H, W)`` reconstructions in [0,1]."""
        return self.decoder(z)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.decode(self.encode(x))

    # ------------------------------------------------------------------
    def _stream(self, fn, inputs: np.ndarray, item_shape: Tuple[int, ...],
                batch_size: int) -> np.ndarray:
        """Run ``fn`` chunk-wise on the inference fast path.

        Writes into a preallocated ``(N,) + item_shape`` output so peak
        memory stays fixed regardless of ``len(inputs)``.
        """
        count = len(inputs)
        dtype = next(iter(self.parameters())).dtype
        out = np.empty((count,) + item_shape, dtype=dtype)
        with nn.inference_mode():
            was_training = self.training
            self.eval()
            for start in range(0, count, batch_size):
                stop = min(start + batch_size, count)
                out[start:stop] = fn(nn.Tensor(inputs[start:stop])).data
            self.train(was_training)
        return out

    def reconstruct(self, inputs: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Batched inference returning reconstructions as a numpy array."""
        size = self.config.input_size
        return self._stream(self.forward, inputs, (1, size, size), batch_size)

    def encode_numpy(self, inputs: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Batched latent extraction (Algorithm 1, line 3)."""
        return self._stream(self.encode, inputs, self.config.latent_shape, batch_size)

    def decode_numpy(self, latents: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Batched decoding (Algorithm 1, line 6)."""
        size = self.config.input_size
        return self._stream(self.decode, latents, (1, size, size), batch_size)


def train_autoencoder(
    samples: np.ndarray,
    config: Optional[AutoencoderConfig] = None,
    epochs: int = 40,
    batch_size: int = 32,
    learning_rate: float = 1e-3,
    seed: int = 0,
    verbose: bool = False,
) -> ConvAutoencoder:
    """Train a per-class auto-encoder on die grids (Algorithm 1, line 1).

    Parameters
    ----------
    samples:
        ``(N, H, W)`` die grids of one defect class.
    config:
        Auto-encoder architecture; inferred input size when omitted.

    Returns the trained model (in eval mode).
    """
    samples = np.asarray(samples)
    if samples.ndim != 3:
        raise ValueError("samples must be (N, H, W) die grids")
    if len(samples) == 0:
        raise ValueError("cannot train an auto-encoder on zero samples")
    if config is None:
        config = AutoencoderConfig(input_size=samples.shape[1], seed=seed)
    model = ConvAutoencoder(config)
    optimizer = nn.Adam(model.parameters(), lr=learning_rate)
    rng = np.random.default_rng(seed)

    inputs = np.stack([grid_to_tensor(grid) for grid in samples])
    # Strict forward -> backward -> step loop: safe for per-layer
    # scratch reuse and in-place gradient buffers.
    with nn.train_scratch():
        for epoch in range(1, epochs + 1):
            order = rng.permutation(len(inputs))
            epoch_loss = 0.0
            for start in range(0, len(order), batch_size):
                batch = inputs[order[start:start + batch_size]]
                tensor = nn.Tensor(batch)
                reconstruction = model(tensor)
                loss = nn.mse_loss(reconstruction, batch)
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data) * len(batch)
            if verbose:
                print(f"AE epoch {epoch:3d} mse={epoch_loss / len(inputs):.5f}")
    model.eval()
    return model
