"""Training loops for the full-coverage CNN and the SelectiveNet.

The paper trains with Adam for 100 epochs, lambda = alpha = 0.5; the
:class:`TrainConfig` defaults mirror that, with batch size and epochs
scaled to what the numpy substrate can run in reasonable time.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from .. import nn
from ..data.dataset import BatchIterator, WaferDataset
from .cnn import WaferCNN
from .losses import selectivenet_objective
from .selective import SelectiveNet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports core)
    from ..obs.events import RunLogger

__all__ = ["TrainConfig", "EpochStats", "TrainHistory", "Trainer"]

logger = logging.getLogger("repro.trainer")


def _ensure_stream_handler() -> None:
    """Attach a plain stdout handler for ``verbose=True`` convenience.

    Users who configure ``logging`` themselves never hit this; it only
    fires when verbose output was requested and the ``repro.trainer``
    logger would otherwise swallow INFO records.
    """
    if logger.handlers or logging.getLogger().handlers:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)


@dataclass
class TrainConfig:
    """Hyper-parameters shared by both training modes.

    ``target_coverage=1.0`` trains a plain cross-entropy model (the
    paper's full-coverage setup); anything below 1.0 trains the Eq. 9
    selective objective.
    """

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    target_coverage: float = 1.0
    lam: float = 0.5
    alpha: float = 0.5
    weight_decay: float = 0.0
    penalty_mode: str = "symmetric"
    grad_clip: Optional[float] = None
    early_stopping_patience: Optional[int] = None
    seed: int = 0
    shuffle: bool = True
    verbose: bool = False
    #: >1 enables synchronous data-parallel training: each mini-batch
    #: is sharded across worker processes, gradients are combined, and
    #: one optimizer step is applied — same trajectory as serial
    #: training up to float summation order.  Silently falls back to
    #: serial where multiprocessing is unavailable.
    num_workers: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 < self.target_coverage <= 1.0:
            raise ValueError("target_coverage must be in (0, 1]")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive when set")
        if self.early_stopping_patience is not None and self.early_stopping_patience <= 0:
            raise ValueError("early_stopping_patience must be positive when set")


@dataclass
class EpochStats:
    """Metrics recorded after each epoch.

    ``grad_norm`` is the mean global L2 gradient norm over the epoch's
    batches (measured before clipping), the standard divergence /
    vanishing-gradient telltale in run logs.
    """

    epoch: int
    loss: float
    train_accuracy: float
    coverage: float
    selective_risk: float
    seconds: float
    val_accuracy: Optional[float] = None
    grad_norm: Optional[float] = None


@dataclass
class TrainHistory:
    """Accumulated per-epoch statistics."""

    epochs: List[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1]

    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]


class Trainer:
    """Trains either a :class:`WaferCNN` or a :class:`SelectiveNet`.

    The mode is inferred from the model type: a plain CNN always trains
    with weighted cross-entropy; a SelectiveNet trains with the Eq. 9
    objective when ``config.target_coverage < 1`` and degenerates to
    cross-entropy (alpha effectively 0) at full coverage.
    """

    def __init__(
        self,
        model: nn.Module,
        config: Optional[TrainConfig] = None,
        run_logger: Optional["RunLogger"] = None,
    ) -> None:
        if not isinstance(model, (WaferCNN, SelectiveNet)):
            raise TypeError("Trainer supports WaferCNN and SelectiveNet models")
        self.model = model
        self.config = config if config is not None else TrainConfig()
        self.run_logger = run_logger
        self.optimizer = nn.Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainHistory()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: WaferDataset,
        validation: Optional[WaferDataset] = None,
        callback: Optional[Callable[[EpochStats], None]] = None,
    ) -> TrainHistory:
        """Run the configured number of epochs; returns the history.

        Progress goes through the ``repro.trainer`` logger
        (``verbose=True`` attaches a stream handler as a convenience);
        when a :class:`~repro.obs.events.RunLogger` was passed to the
        constructor, the config, every :class:`EpochStats`, and a final
        summary are appended to its JSONL stream.
        """
        if len(train) == 0:
            raise ValueError("cannot train on an empty dataset")
        if self.config.verbose:
            _ensure_stream_handler()
            logger.setLevel(logging.INFO)
        if self.run_logger is not None:
            self.run_logger.log_config(self.config)
        batches = BatchIterator(
            train,
            batch_size=self.config.batch_size,
            rng=self._rng,
            shuffle=self.config.shuffle,
        )
        engine = self._make_engine()
        started = time.perf_counter()
        best_val = -np.inf
        epochs_without_improvement = 0
        try:
            for epoch in range(1, self.config.epochs + 1):
                stats = self._run_epoch(epoch, batches, engine)
                if validation is not None:
                    stats.val_accuracy = self._quick_accuracy(validation)
                self.history.append(stats)
                if callback is not None:
                    callback(stats)
                if self.run_logger is not None:
                    self.run_logger.log_epoch(stats)
                val = f" val_acc={stats.val_accuracy:.3f}" if stats.val_accuracy is not None else ""
                logger.info(
                    "epoch %3d loss=%.4f acc=%.3f cov=%.3f grad=%.3f%s",
                    epoch, stats.loss, stats.train_accuracy, stats.coverage,
                    stats.grad_norm if stats.grad_norm is not None else 0.0, val,
                )
                patience = self.config.early_stopping_patience
                if patience is not None and stats.val_accuracy is not None:
                    if stats.val_accuracy > best_val + 1e-9:
                        best_val = stats.val_accuracy
                        epochs_without_improvement = 0
                    else:
                        epochs_without_improvement += 1
                        if epochs_without_improvement >= patience:
                            logger.info("early stop at epoch %d", epoch)
                            if self.run_logger is not None:
                                self.run_logger.log("early_stop", epoch=epoch)
                            break
        finally:
            if engine is not None:
                engine.shutdown()
        if self.run_logger is not None:
            final = self.history.final
            self.run_logger.log(
                "train_summary",
                epochs_run=len(self.history.epochs),
                wall_seconds=time.perf_counter() - started,
                final_loss=final.loss,
                final_train_accuracy=final.train_accuracy,
                final_coverage=final.coverage,
                final_val_accuracy=final.val_accuracy,
            )
        return self.history

    # ------------------------------------------------------------------
    def _selective_mode(self) -> bool:
        return isinstance(self.model, SelectiveNet) and self.config.target_coverage < 1.0

    def _make_engine(self):
        """Build the data-parallel engine, or None for serial training.

        ``num_workers > 1`` on a platform without multiprocessing
        support logs a warning and falls back to serial — results are
        identical either way, only wall-clock differs.
        """
        if self.config.num_workers <= 1:
            return None
        from ..parallel import DataParallelEngine, ObjectiveSpec, parallel_supported

        if not parallel_supported(self.config.num_workers):
            logger.warning(
                "num_workers=%d requested but parallel execution is "
                "unavailable on this platform; training serially",
                self.config.num_workers,
            )
            return None
        objective = ObjectiveSpec(
            kind="selective" if self._selective_mode() else "cross_entropy",
            target_coverage=self.config.target_coverage,
            lam=self.config.lam,
            alpha=self.config.alpha,
            penalty_mode=self.config.penalty_mode,
        )
        return DataParallelEngine(
            self.model,
            objective,
            num_workers=self.config.num_workers,
            max_batch=self.config.batch_size,
        )

    def _run_epoch(self, epoch: int, batches: BatchIterator, engine=None) -> EpochStats:
        self.model.train()
        started = time.perf_counter()
        total_loss = 0.0
        total_correct = 0
        total_samples = 0
        coverage_sum = 0.0
        risk_sum = 0.0
        grad_norm_sum = 0.0
        batch_count = 0

        selective = self._selective_mode()

        with nn.train_scratch():
            for inputs, labels, weights in batches:
                if engine is not None:
                    step = engine.train_step(inputs, labels, weights)
                    loss_value = step.loss
                    correct = step.correct
                    coverage_sum += step.coverage
                    risk_sum += step.selective_risk
                elif selective:
                    tensor = nn.Tensor(inputs)
                    logits, selection = self.model(tensor)
                    terms = selectivenet_objective(
                        logits,
                        selection,
                        labels,
                        target_coverage=self.config.target_coverage,
                        lam=self.config.lam,
                        alpha=self.config.alpha,
                        sample_weights=weights,
                        penalty_mode=self.config.penalty_mode,
                    )
                    self.optimizer.zero_grad(set_to_none=False)
                    terms.total.backward()
                    loss_value = float(terms.total.data)
                    correct = int((logits.data.argmax(axis=1) == labels).sum())
                    coverage_sum += terms.coverage
                    risk_sum += terms.selective_risk
                else:
                    tensor = nn.Tensor(inputs)
                    outputs = self.model(tensor)
                    logits = outputs[0] if isinstance(outputs, tuple) else outputs
                    loss = nn.cross_entropy(logits, labels, sample_weights=weights)
                    self.optimizer.zero_grad(set_to_none=False)
                    loss.backward()
                    loss_value = float(loss.data)
                    correct = int((logits.data.argmax(axis=1) == labels).sum())
                    coverage_sum += 1.0
                    risk_sum += loss_value

                norm = self._grad_norm()
                grad_norm_sum += norm
                if self.config.grad_clip is not None:
                    self._clip_gradients(self.config.grad_clip, norm=norm)
                self.optimizer.step()

                total_loss += loss_value * len(labels)
                total_correct += correct
                total_samples += len(labels)
                batch_count += 1

        return EpochStats(
            epoch=epoch,
            loss=total_loss / max(total_samples, 1),
            train_accuracy=total_correct / max(total_samples, 1),
            coverage=coverage_sum / max(batch_count, 1),
            selective_risk=risk_sum / max(batch_count, 1),
            seconds=time.perf_counter() - started,
            grad_norm=grad_norm_sum / max(batch_count, 1),
        )

    def _grad_norm(self) -> float:
        """Global L2 norm over all parameter gradients."""
        total = 0.0
        for param in self.model.parameters():
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        return float(np.sqrt(total))

    def _clip_gradients(self, max_norm: float, norm: Optional[float] = None) -> None:
        """Scale all gradients so their global L2 norm is <= max_norm."""
        if norm is None:
            norm = self._grad_norm()
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for param in self.model.parameters():
                if param.grad is not None:
                    param.grad *= scale

    def _quick_accuracy(self, dataset: WaferDataset, chunk: int = 512) -> float:
        """Validation accuracy, streamed in fixed-size chunks.

        Chunking bounds peak memory on large validation sets: only one
        ``chunk``-sized slice of predictions is materialized at a time.
        """
        if len(dataset) == 0:
            return 0.0
        inputs = dataset.tensors()
        labels = dataset.labels
        correct = 0
        for start in range(0, len(inputs), chunk):
            stop = min(start + chunk, len(inputs))
            piece = inputs[start:stop]
            if isinstance(self.model, SelectiveNet):
                probabilities, _ = self.model.predict_batched(piece)
                predictions = probabilities.argmax(axis=1)
            else:
                predictions = self.model.predict(piece)
            correct += int((predictions == labels[start:stop]).sum())
        return correct / len(inputs)
