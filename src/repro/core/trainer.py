"""Training loops for the full-coverage CNN and the SelectiveNet.

The paper trains with Adam for 100 epochs, lambda = alpha = 0.5; the
:class:`TrainConfig` defaults mirror that, with batch size and epochs
scaled to what the numpy substrate can run in reasonable time.

Fault tolerance (see :mod:`repro.resilience`):

* ``checkpoint_dir`` enables crash-safe checkpoints — atomic
  directories with CRC manifests covering model + optimizer + RNG +
  epoch — and ``fit(..., resume="auto")`` restarts from the newest
  *valid* one, skipping corrupt checkpoints with a warning.  Because
  the shuffle RNG state is restored bit-exactly, the resumed
  trajectory matches the uninterrupted run.
* A :class:`~repro.resilience.TrainingWatchdog` inspects every batch
  (non-finite loss / gradient explosions) *before* the optimizer step;
  a trip rolls the model, optimizer, and RNG back to the last good
  checkpoint with a learning-rate cut instead of poisoning the run.
* Data-parallel training survives worker loss: the engine retries /
  re-shards transparently, and on total pool degradation
  (:class:`~repro.parallel.ParallelUnavailable`) the trainer finishes
  the *same batch* — and the rest of the run — on the serial path, so
  no step is skipped or double-applied.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from .. import nn
from ..data.dataset import BatchIterator, WaferDataset
from ..obs.flight import dump_flight, record_flight_event
from ..obs.trace import current_tracer
from ..resilience.chaos import chaos_point
from ..resilience.retry import RetryPolicy
from ..resilience.watchdog import TrainingWatchdog
from .cnn import WaferCNN
from .losses import selectivenet_objective
from .selective import SelectiveNet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports core)
    from ..obs.events import RunLogger

__all__ = ["TrainConfig", "EpochStats", "TrainHistory", "Trainer"]

logger = logging.getLogger("repro.trainer")


class _WatchdogTrip(Exception):
    """Internal: a batch failed the health check before the optimizer
    step was applied; carries the watchdog's reason string."""

    def __init__(self, reason: str, epoch: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.epoch = epoch


def _ensure_stream_handler() -> None:
    """Attach a plain stdout handler for ``verbose=True`` convenience.

    Users who configure ``logging`` themselves never hit this; it only
    fires when verbose output was requested and the ``repro.trainer``
    logger would otherwise swallow INFO records.
    """
    if logger.handlers or logging.getLogger().handlers:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)


@dataclass
class TrainConfig:
    """Hyper-parameters shared by both training modes.

    ``target_coverage=1.0`` trains a plain cross-entropy model (the
    paper's full-coverage setup); anything below 1.0 trains the Eq. 9
    selective objective.
    """

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    target_coverage: float = 1.0
    lam: float = 0.5
    alpha: float = 0.5
    weight_decay: float = 0.0
    penalty_mode: str = "symmetric"
    grad_clip: Optional[float] = None
    early_stopping_patience: Optional[int] = None
    seed: int = 0
    shuffle: bool = True
    verbose: bool = False
    #: >1 enables synchronous data-parallel training: each mini-batch
    #: is sharded across worker processes, gradients are combined, and
    #: one optimizer step is applied — same trajectory as serial
    #: training up to float summation order.  Silently falls back to
    #: serial where multiprocessing is unavailable.
    num_workers: int = 1
    #: Respawn budget per lost parallel worker (exponential backoff);
    #: 0 means a dead worker is never replaced and the pool shrinks.
    worker_retries: int = 2
    #: Directory for crash-safe checkpoints; ``None`` disables
    #: checkpointing (and with it watchdog rollback and resume).
    checkpoint_dir: Optional[str] = None
    #: Epochs between checkpoints (the final epoch is always saved).
    checkpoint_every: int = 1
    #: Retention bound passed to the checkpoint manager (0 keeps all).
    keep_checkpoints: int = 3
    #: Publish checkpoints on a background thread (state is snapshotted
    #: synchronously, so the training trajectory is unchanged).  Cuts
    #: the ``checkpoint_every=1`` wall-clock tax; ``fit`` still joins
    #: every in-flight save before returning or rolling back.
    checkpoint_async: bool = False
    #: Watchdog bound on the pre-clip global gradient L2 norm; ``None``
    #: disables the explosion check (non-finite values always trip).
    grad_norm_limit: Optional[float] = None
    #: Watchdog bound on the batch loss; ``None`` disables it.
    loss_limit: Optional[float] = None
    #: Learning-rate multiplier applied on each watchdog rollback.
    rollback_lr_cut: float = 0.5
    #: Watchdog rollbacks tolerated before the run fails loudly.
    max_rollbacks: int = 2

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 < self.target_coverage <= 1.0:
            raise ValueError("target_coverage must be in (0, 1]")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive when set")
        if self.early_stopping_patience is not None and self.early_stopping_patience <= 0:
            raise ValueError("early_stopping_patience must be positive when set")
        if self.worker_retries < 0:
            raise ValueError("worker_retries must be non-negative")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.keep_checkpoints < 0:
            raise ValueError("keep_checkpoints must be non-negative")
        if not 0.0 < self.rollback_lr_cut <= 1.0:
            raise ValueError("rollback_lr_cut must be in (0, 1]")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be non-negative")


@dataclass
class EpochStats:
    """Metrics recorded after each epoch.

    ``grad_norm`` is the mean global L2 gradient norm over the epoch's
    batches (measured before clipping), the standard divergence /
    vanishing-gradient telltale in run logs.
    """

    epoch: int
    loss: float
    train_accuracy: float
    coverage: float
    selective_risk: float
    seconds: float
    val_accuracy: Optional[float] = None
    grad_norm: Optional[float] = None


@dataclass
class TrainHistory:
    """Accumulated per-epoch statistics."""

    epochs: List[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1]

    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]


class Trainer:
    """Trains either a :class:`WaferCNN` or a :class:`SelectiveNet`.

    The mode is inferred from the model type: a plain CNN always trains
    with weighted cross-entropy; a SelectiveNet trains with the Eq. 9
    objective when ``config.target_coverage < 1`` and degenerates to
    cross-entropy (alpha effectively 0) at full coverage.
    """

    def __init__(
        self,
        model: nn.Module,
        config: Optional[TrainConfig] = None,
        run_logger: Optional["RunLogger"] = None,
    ) -> None:
        if not isinstance(model, (WaferCNN, SelectiveNet)):
            raise TypeError("Trainer supports WaferCNN and SelectiveNet models")
        self.model = model
        self.config = config if config is not None else TrainConfig()
        self.run_logger = run_logger
        self.optimizer = nn.Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainHistory()
        self._rng = np.random.default_rng(self.config.seed)
        self.watchdog = TrainingWatchdog(
            grad_norm_limit=self.config.grad_norm_limit,
            loss_limit=self.config.loss_limit,
        )
        self._engine = None
        self._checkpoints = None
        if self.config.checkpoint_dir is not None:
            from ..resilience.checkpoint import CheckpointManager

            self._checkpoints = CheckpointManager(
                self.config.checkpoint_dir, keep=self.config.keep_checkpoints
            )
        from ..obs.metrics import default_registry

        reg = default_registry()
        self._m_rollbacks = reg.counter("train.rollbacks")
        self._m_watchdog = reg.counter("train.watchdog.trips")

    # ------------------------------------------------------------------
    def fit(
        self,
        train: WaferDataset,
        validation: Optional[WaferDataset] = None,
        callback: Optional[Callable[[EpochStats], None]] = None,
        resume: Optional[str] = None,
    ) -> TrainHistory:
        """Run the configured number of epochs; returns the history.

        Progress goes through the ``repro.trainer`` logger
        (``verbose=True`` attaches a stream handler as a convenience);
        when a :class:`~repro.obs.events.RunLogger` was passed to the
        constructor, the config, every :class:`EpochStats`, and a final
        summary are appended to its JSONL stream.

        ``resume="auto"`` restarts from the newest valid checkpoint in
        ``config.checkpoint_dir`` (a no-op when none exists); a path
        resumes from that specific checkpoint.  Model, optimizer, RNG,
        and early-stopping bookkeeping are all restored, so the
        resumed trajectory matches the uninterrupted run exactly.
        """
        if len(train) == 0:
            raise ValueError("cannot train on an empty dataset")
        if self.config.verbose:
            _ensure_stream_handler()
            logger.setLevel(logging.INFO)
        if self.run_logger is not None:
            self.run_logger.log_config(self.config)
        start_epoch = 1
        best_val = -np.inf
        epochs_without_improvement = 0
        if resume is not None:
            state = self._resume(resume)
            if state is not None:
                start_epoch = int(state["epoch"]) + 1
                extra = state.get("extra") or {}
                saved_best = extra.get("best_val")
                best_val = -np.inf if saved_best is None else float(saved_best)
                epochs_without_improvement = int(
                    extra.get("epochs_without_improvement", 0)
                )
        batches = BatchIterator(
            train,
            batch_size=self.config.batch_size,
            rng=self._rng,
            shuffle=self.config.shuffle,
        )
        self._engine = self._make_engine()
        started = time.perf_counter()
        rollbacks = 0
        stop = False
        try:
            epoch = start_epoch
            while epoch <= self.config.epochs and not stop:
                self._check_engine_health()
                try:
                    stats = self._run_epoch(epoch, batches, self._engine)
                except _WatchdogTrip as trip:
                    state = self._rollback(trip, rollbacks)
                    rollbacks += 1
                    epoch = int(state["epoch"]) + 1
                    extra = state.get("extra") or {}
                    saved_best = extra.get("best_val")
                    best_val = -np.inf if saved_best is None else float(saved_best)
                    epochs_without_improvement = int(
                        extra.get("epochs_without_improvement", 0)
                    )
                    self.history.epochs = [
                        s for s in self.history.epochs
                        if s.epoch <= int(state["epoch"])
                    ]
                    continue
                if validation is not None:
                    stats.val_accuracy = self._quick_accuracy(validation)
                self.history.append(stats)
                if callback is not None:
                    callback(stats)
                if self.run_logger is not None:
                    self.run_logger.log_epoch(stats)
                val = f" val_acc={stats.val_accuracy:.3f}" if stats.val_accuracy is not None else ""
                logger.info(
                    "epoch %3d loss=%.4f acc=%.3f cov=%.3f grad=%.3f%s",
                    epoch, stats.loss, stats.train_accuracy, stats.coverage,
                    stats.grad_norm if stats.grad_norm is not None else 0.0, val,
                )
                patience = self.config.early_stopping_patience
                if patience is not None and stats.val_accuracy is not None:
                    if stats.val_accuracy > best_val + 1e-9:
                        best_val = stats.val_accuracy
                        epochs_without_improvement = 0
                    else:
                        epochs_without_improvement += 1
                        if epochs_without_improvement >= patience:
                            logger.info("early stop at epoch %d", epoch)
                            if self.run_logger is not None:
                                self.run_logger.log("early_stop", epoch=epoch)
                            stop = True
                if self._checkpoints is not None and (
                    epoch % self.config.checkpoint_every == 0
                    or epoch == self.config.epochs
                    or stop
                ):
                    self._save_checkpoint(
                        epoch, best_val, epochs_without_improvement
                    )
                epoch += 1
        finally:
            if self._engine is not None:
                self._engine.shutdown()
                self._engine = None
            if self._checkpoints is not None:
                # Join in-flight async publishes: fit() returning means
                # every checkpoint it reported is durable on disk.
                self._checkpoints.wait_pending()
        if self.run_logger is not None and self.history.epochs:
            final = self.history.final
            self.run_logger.log(
                "train_summary",
                epochs_run=len(self.history.epochs),
                wall_seconds=time.perf_counter() - started,
                final_loss=final.loss,
                final_train_accuracy=final.train_accuracy,
                final_coverage=final.coverage,
                final_val_accuracy=final.val_accuracy,
            )
        return self.history

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _resume(self, resume: str) -> Optional[Dict[str, Any]]:
        """Restore from a checkpoint; returns its state or ``None``.

        ``"auto"`` picks the newest valid checkpoint (skipping corrupt
        ones) and is a silent no-op on a fresh run; an explicit path
        must validate or the :class:`~repro.resilience.IntegrityError`
        propagates.
        """
        if resume == "auto":
            if self._checkpoints is None:
                return None
            path = self._checkpoints.latest_valid()
            if path is None:
                return None
        else:
            if self._checkpoints is None:
                raise ValueError(
                    "resume from a path requires config.checkpoint_dir"
                )
            path = resume
        state = self._checkpoints.load(path, self.model, self.optimizer)
        if state.get("rng_state"):
            self._checkpoints.restore_rng(self._rng, state["rng_state"])
        logger.info("resumed from %s (epoch %d)", path, state["epoch"])
        if self.run_logger is not None:
            self.run_logger.log("resume", path=path, epoch=int(state["epoch"]))
        return state

    def _save_checkpoint(
        self, epoch: int, best_val: float, epochs_without_improvement: int
    ) -> None:
        result = self._checkpoints.save(
            epoch,
            model=self.model,
            optimizer=self.optimizer,
            rng=self._rng,
            extra={
                "best_val": float(best_val) if np.isfinite(best_val) else None,
                "epochs_without_improvement": int(epochs_without_improvement),
            },
            async_=self.config.checkpoint_async,
        )
        path = result if isinstance(result, str) else result.path
        chaos_point("train.checkpoint.saved", path=path, epoch=epoch)

    def _rollback(self, trip: _WatchdogTrip, rollbacks: int) -> Dict[str, Any]:
        """Restore the last good checkpoint after a watchdog trip.

        Cuts the learning rate by ``config.rollback_lr_cut`` so the
        retried epochs do not immediately re-diverge.  Raises when no
        checkpointing is configured, nothing valid exists, or the
        rollback budget is spent — a run that cannot recover must fail
        loudly rather than train on poisoned weights.
        """
        logger.warning(
            "watchdog tripped at epoch %d: %s", trip.epoch, trip.reason
        )
        if self.run_logger is not None:
            self.run_logger.log(
                "watchdog_trip", epoch=trip.epoch, reason=trip.reason
            )
        record_flight_event(
            "watchdog_rollback", epoch=trip.epoch, reason=trip.reason
        )
        dump_flight("watchdog-rollback")
        if self._checkpoints is None:
            raise RuntimeError(
                f"training diverged ({trip.reason}) and no checkpoint_dir "
                "is configured to roll back to"
            )
        if rollbacks >= self.config.max_rollbacks:
            raise RuntimeError(
                f"training diverged ({trip.reason}) after exhausting "
                f"{self.config.max_rollbacks} rollback(s)"
            )
        # Async publishes may still be in flight; rollback must only
        # consider durable checkpoints.
        self._checkpoints.wait_pending()
        path = self._checkpoints.latest_valid()
        if path is None:
            raise RuntimeError(
                f"training diverged ({trip.reason}) with no valid "
                "checkpoint to roll back to"
            )
        state = self._checkpoints.load(path, self.model, self.optimizer)
        if state.get("rng_state"):
            self._checkpoints.restore_rng(self._rng, state["rng_state"])
        self.optimizer.lr *= self.config.rollback_lr_cut
        self._m_rollbacks.inc()
        logger.warning(
            "rolled back to %s (epoch %d), lr cut to %.3g",
            path, state["epoch"], self.optimizer.lr,
        )
        if self.run_logger is not None:
            self.run_logger.log(
                "rollback",
                epoch=int(state["epoch"]),
                lr=float(self.optimizer.lr),
            )
        return state

    def _check_engine_health(self) -> None:
        """Epoch-boundary heartbeat; drops to serial on pool loss."""
        if self._engine is None:
            return
        from ..parallel import ParallelUnavailable

        try:
            self._engine.health_check()
        except ParallelUnavailable:
            logger.warning(
                "data-parallel pool degraded; continuing this run serially"
            )
            self._engine = None

    # ------------------------------------------------------------------
    def _selective_mode(self) -> bool:
        return isinstance(self.model, SelectiveNet) and self.config.target_coverage < 1.0

    def _make_engine(self):
        """Build the data-parallel engine, or None for serial training.

        ``num_workers > 1`` on a platform without multiprocessing
        support logs a warning and falls back to serial — results are
        identical either way, only wall-clock differs.
        """
        if self.config.num_workers <= 1:
            return None
        from ..parallel import DataParallelEngine, ObjectiveSpec, parallel_supported

        if not parallel_supported(self.config.num_workers):
            logger.warning(
                "num_workers=%d requested but parallel execution is "
                "unavailable on this platform; training serially",
                self.config.num_workers,
            )
            return None
        objective = ObjectiveSpec(
            kind="selective" if self._selective_mode() else "cross_entropy",
            target_coverage=self.config.target_coverage,
            lam=self.config.lam,
            alpha=self.config.alpha,
            penalty_mode=self.config.penalty_mode,
        )
        return DataParallelEngine(
            self.model,
            objective,
            num_workers=self.config.num_workers,
            max_batch=self.config.batch_size,
            retry=RetryPolicy(
                max_retries=self.config.worker_retries, seed=self.config.seed
            ),
        )

    def _run_epoch(self, epoch: int, batches: BatchIterator, engine=None) -> EpochStats:
        from ..parallel.engine import ParallelUnavailable

        self.model.train()
        started = time.perf_counter()
        tracer = current_tracer()
        epoch_span = (
            tracer.start_span("train.epoch", epoch=epoch)
            if tracer is not None
            else None
        )
        total_loss = 0.0
        total_correct = 0
        total_samples = 0
        coverage_sum = 0.0
        risk_sum = 0.0
        grad_norm_sum = 0.0
        batch_count = 0

        selective = self._selective_mode()

        with nn.train_scratch():
            for inputs, labels, weights in batches:
                chaos_point(
                    "train.batch", epoch=epoch, inputs=inputs, labels=labels
                )
                step = None
                if self._engine is not None:
                    try:
                        step = self._engine.train_step(inputs, labels, weights)
                    except ParallelUnavailable:
                        # The engine never published this batch's
                        # gradients, so finishing it serially keeps the
                        # trajectory intact — nothing skipped, nothing
                        # double-applied.
                        logger.warning(
                            "data-parallel pool lost mid-epoch; "
                            "continuing this run serially"
                        )
                        self._engine = None
                if step is not None:
                    loss_value = step.loss
                    correct = step.correct
                    coverage_sum += step.coverage
                    risk_sum += step.selective_risk
                elif selective:
                    tensor = nn.Tensor(inputs)
                    logits, selection = self.model(tensor)
                    terms = selectivenet_objective(
                        logits,
                        selection,
                        labels,
                        target_coverage=self.config.target_coverage,
                        lam=self.config.lam,
                        alpha=self.config.alpha,
                        sample_weights=weights,
                        penalty_mode=self.config.penalty_mode,
                    )
                    self.optimizer.zero_grad(set_to_none=False)
                    terms.total.backward()
                    loss_value = float(terms.total.data)
                    correct = int((logits.data.argmax(axis=1) == labels).sum())
                    coverage_sum += terms.coverage
                    risk_sum += terms.selective_risk
                else:
                    tensor = nn.Tensor(inputs)
                    outputs = self.model(tensor)
                    logits = outputs[0] if isinstance(outputs, tuple) else outputs
                    loss = nn.cross_entropy(logits, labels, sample_weights=weights)
                    self.optimizer.zero_grad(set_to_none=False)
                    loss.backward()
                    loss_value = float(loss.data)
                    correct = int((logits.data.argmax(axis=1) == labels).sum())
                    coverage_sum += 1.0
                    risk_sum += loss_value

                norm = self._grad_norm()
                reason = self.watchdog.check(loss_value, norm)
                if reason is not None:
                    # Checked before the optimizer step: poisoned
                    # gradients must never touch the weights.
                    self._m_watchdog.inc()
                    if epoch_span is not None:
                        epoch_span.event("watchdog_trip", reason=reason)
                        tracer.end(epoch_span, status="error")
                    raise _WatchdogTrip(reason, epoch)
                grad_norm_sum += norm
                if self.config.grad_clip is not None:
                    self._clip_gradients(self.config.grad_clip, norm=norm)
                self.optimizer.step()

                total_loss += loss_value * len(labels)
                total_correct += correct
                total_samples += len(labels)
                batch_count += 1

        stats = EpochStats(
            epoch=epoch,
            loss=total_loss / max(total_samples, 1),
            train_accuracy=total_correct / max(total_samples, 1),
            coverage=coverage_sum / max(batch_count, 1),
            selective_risk=risk_sum / max(batch_count, 1),
            seconds=time.perf_counter() - started,
            grad_norm=grad_norm_sum / max(batch_count, 1),
        )
        if epoch_span is not None:
            epoch_span.set("batches", batch_count)
            epoch_span.set("samples", total_samples)
            tracer.end(epoch_span, duration_s=stats.seconds)
        return stats

    def _grad_norm(self) -> float:
        """Global L2 norm over all parameter gradients."""
        total = 0.0
        for param in self.model.parameters():
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        return float(np.sqrt(total))

    def _clip_gradients(self, max_norm: float, norm: Optional[float] = None) -> None:
        """Scale all gradients so their global L2 norm is <= max_norm."""
        if norm is None:
            norm = self._grad_norm()
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for param in self.model.parameters():
                if param.grad is not None:
                    param.grad *= scale

    def _quick_accuracy(self, dataset: WaferDataset, chunk: int = 512) -> float:
        """Validation accuracy, streamed in fixed-size chunks.

        Chunking bounds peak memory on large validation sets: only one
        ``chunk``-sized slice of predictions is materialized at a time.
        """
        if len(dataset) == 0:
            return 0.0
        inputs = dataset.tensors()
        labels = dataset.labels
        correct = 0
        for start in range(0, len(inputs), chunk):
            stop = min(start + chunk, len(inputs))
            piece = inputs[start:stop]
            if isinstance(self.model, SelectiveNet):
                probabilities, _ = self.model.predict_batched(piece)
                predictions = probabilities.argmax(axis=1)
            else:
                predictions = self.model.predict(piece)
            correct += int((predictions == labels[start:stop]).sum())
        return correct / len(inputs)
