"""Bounded exponential-backoff retry policy with deterministic jitter.

Respawning a crashed worker immediately can hot-loop when the crash
cause is environmental (OOM killer, disk full); backing off
exponentially with jitter is the standard fix.  The jitter here is
*derived from the seed and the attempt number*, not from global
randomness, so a faulted training run remains bit-reproducible — the
same seed produces the same recovery timeline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterator

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed component, and how fast.

    ``max_retries=0`` disables retrying entirely — the first failure is
    terminal and callers degrade immediately (e.g. the data-parallel
    engine falls back to serial execution).
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    # ------------------------------------------------------------------
    def delay_s(self, attempt: int) -> float:
        """Backoff delay before retry ``attempt`` (0-based).

        ``min(max_delay, base * 2**attempt)`` scaled by a deterministic
        jitter factor in ``[1, 1 + jitter]`` drawn from
        ``(seed, attempt)`` — identical across runs with the same seed.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        base = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        if self.jitter == 0 or base == 0:
            return base
        rng = random.Random(self.seed * 1000003 + attempt)
        return base * (1.0 + self.jitter * rng.random())

    def delays(self) -> Iterator[float]:
        """The full backoff schedule, one delay per allowed retry."""
        for attempt in range(self.max_retries):
            yield self.delay_s(attempt)

    def sleep(self, attempt: int) -> float:
        """Sleep for :meth:`delay_s` and return the slept duration."""
        delay = self.delay_s(attempt)
        if delay > 0:
            time.sleep(delay)
        return delay
