"""Chaos smoke gate (``python -m repro.resilience.smoke``).

Drives the three headline failure scenarios end-to-end with
deterministic fault injection (:mod:`repro.resilience.chaos`) and exits
non-zero unless every recovery contract holds:

1. **Worker loss → serial fallback, exact trajectory.**  A worker of a
   two-worker training pool is killed at its first step with no respawn
   budget; the engine degrades, the trainer finishes the whole run on
   the serial path, and the final weights are *bit-identical* to a
   serial run with the same seed (no step was lost or double-applied).
2. **SIGKILL between checkpoints → resume matches uninterrupted.**  A
   training subprocess dies (``os._exit``) right after publishing its
   second checkpoint; ``fit(resume="auto")`` in a fresh process picks
   it up and the resumed final weights are bit-identical to an
   uninterrupted run.
3. **Total replica loss → serve keeps answering.**  Both serve
   replicas are killed with no restart budget; the per-lane circuit
   breakers open and every request is served by the in-process
   fallback with decisions identical to ``predict_selective``, while
   ``serve.breaker.open`` / ``serve.fallback_total`` record the event.

``scripts/check.sh`` (and ``make chaos``) run this under a timeout.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import sys
import tempfile

import numpy as np

from ..core.cnn import BackboneConfig, WaferCNN
from ..core.selective import SelectiveNet
from ..core.trainer import TrainConfig, Trainer
from ..data.dataset import WaferDataset
from ..data.wafer import grid_to_tensor
from ..obs.metrics import default_registry
from ..parallel import parallel_supported
from .chaos import ChaosPlan, activate, active_plan, kill_process, make_token

_SIZE = 16


def _tiny_dataset(n: int = 48) -> WaferDataset:
    rng = np.random.default_rng(0)
    grids = rng.integers(0, 3, size=(n, _SIZE, _SIZE))
    labels = rng.integers(0, 4, size=(n,)).astype(np.int64)
    return WaferDataset(grids, labels, ("a", "b", "c", "d"))


def _backbone(seed: int = 7) -> BackboneConfig:
    return BackboneConfig(
        input_size=_SIZE, conv_channels=(4, 4), conv_kernels=(3, 3),
        fc_units=16, seed=seed,
    )


def _make_trainer(
    num_workers: int = 1,
    worker_retries: int = 0,
    checkpoint_dir=None,
    epochs: int = 2,
):
    model = WaferCNN(4, _backbone())
    config = TrainConfig(
        epochs=epochs, batch_size=16, seed=3, num_workers=num_workers,
        worker_retries=worker_retries, checkpoint_dir=checkpoint_dir,
    )
    return model, Trainer(model, config)


def _weights_equal(a, b) -> float:
    """Max absolute parameter difference (0.0 means bit-identical)."""
    worst = 0.0
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        worst = max(worst, float(np.abs(pa.data - pb.data).max(initial=0.0)))
    return worst


# ----------------------------------------------------------------------
def scenario_worker_loss() -> int:
    """Kill one of two workers mid-epoch; expect the serial trajectory."""
    if not parallel_supported(2):
        print("chaos smoke: parallel unsupported; worker-loss scenario SKIPPED")
        return 0
    deaths_before = default_registry().counter("resilience.worker.deaths").value
    tmp = tempfile.mkdtemp(prefix="chaos-smoke-")
    try:
        token = make_token(tmp)
        plan = ChaosPlan().inject(
            "parallel.worker.step", kill_process, token=token, rank=1
        )
        with active_plan(plan):
            faulted, trainer = _make_trainer(num_workers=2, worker_retries=0)
            trainer.fit(_tiny_dataset())
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    serial, trainer = _make_trainer(num_workers=1)
    trainer.fit(_tiny_dataset())
    diff = _weights_equal(faulted, serial)
    deaths = default_registry().counter("resilience.worker.deaths").value
    if diff != 0.0:
        print(f"FAIL: faulted run diverged from serial (max diff {diff:.3g})")
        return 1
    if deaths <= deaths_before:
        print("FAIL: worker death was not recorded in resilience.worker.deaths")
        return 1
    print("chaos smoke: worker kill -> serial fallback, weights bit-identical OK")
    return 0


# ----------------------------------------------------------------------
def _interrupted_fit(checkpoint_dir: str) -> None:
    """Child process: train, dying right after the second checkpoint."""
    plan = ChaosPlan().inject("train.checkpoint.saved", kill_process, after=1)
    activate(plan)
    _, trainer = _make_trainer(checkpoint_dir=checkpoint_dir, epochs=4)
    trainer.fit(_tiny_dataset())


def scenario_checkpoint_resume() -> int:
    """SIGKILL between checkpoints; resume="auto" matches uninterrupted."""
    tmp = tempfile.mkdtemp(prefix="chaos-smoke-ckpt-")
    try:
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        child = ctx.Process(target=_interrupted_fit, args=(tmp,))
        child.start()
        child.join(timeout=300)
        if child.is_alive():
            child.kill()
            print("FAIL: interrupted training child hung")
            return 1
        if child.exitcode == 0:
            print("FAIL: chaos kill never fired in the training child")
            return 1
        resumed, trainer = _make_trainer(checkpoint_dir=tmp, epochs=4)
        trainer.fit(_tiny_dataset(), resume="auto")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    baseline, trainer = _make_trainer(epochs=4)
    trainer.fit(_tiny_dataset())
    diff = _weights_equal(resumed, baseline)
    if diff != 0.0:
        print(f"FAIL: resumed run diverged from uninterrupted (max diff {diff:.3g})")
        return 1
    print("chaos smoke: SIGKILL between checkpoints -> resume bit-identical OK")
    return 0


# ----------------------------------------------------------------------
def scenario_replica_loss() -> int:
    """Kill every serve replica; the engine must keep answering."""
    from ..serve import ServeConfig, ServeEngine

    model = SelectiveNet(4, config=_backbone(seed=11))
    model.eval()
    rng = np.random.default_rng(5)
    grids = rng.integers(0, 3, size=(24, _SIZE, _SIZE)).astype(np.uint8)

    reg = default_registry()
    opened_before = reg.counter("serve.breaker.open").value
    fallback_before = reg.counter("serve.fallback_total").value

    config = ServeConfig(
        max_batch_size=8, max_latency_ms=2.0, num_replicas=2,
        cache_bytes=0, replica_restarts=0, breaker_failures=1,
        worker_timeout_s=30.0,
    )
    with ServeEngine(model, config) as engine:
        replicated = engine._backend.num_lanes > 1
        if replicated:
            # Warm the lanes, then take down the whole pool.
            engine.classify_many(grids[:4], timeout=60)
            for lane in range(engine._backend.num_lanes):
                engine._backend._pool.kill(lane)
        results = engine.classify_many(grids, timeout=120)

    expected = model.predict_selective(
        np.stack([grid_to_tensor(g) for g in grids])
    )
    served = np.array([r.label for r in results])
    if not np.array_equal(served, expected.labels):
        print("FAIL: degraded serve decisions diverged from predict_selective")
        return 1
    if replicated:
        if reg.counter("serve.breaker.open").value <= opened_before:
            print("FAIL: breaker never opened after total replica loss")
            return 1
        if reg.counter("serve.fallback_total").value <= fallback_before:
            print("FAIL: in-process fallback was never recorded")
            return 1
        print("chaos smoke: total replica loss -> breaker + in-process "
              "fallback, decisions identical OK")
    else:
        print("chaos smoke: replicas unsupported on this platform; "
              "in-process decisions identical OK")
    return 0


def main() -> int:
    failures = 0
    failures += scenario_worker_loss()
    failures += scenario_checkpoint_resume()
    failures += scenario_replica_loss()
    if failures:
        print(f"chaos smoke FAILED ({failures} scenario(s))")
        return 1
    print("chaos smoke OK (worker loss, checkpoint resume, replica loss)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
