"""Circuit breaker for per-replica serving lanes.

The classic three-state machine: **closed** (traffic flows; failures
are counted), **open** (traffic is routed to a fallback; the lane gets
a rest), **half-open** (after ``reset_timeout_s`` one probe call is let
through — success closes the breaker, failure re-opens it).  A serving
lane whose replica process died would otherwise burn a full worker
timeout on *every* batch; the breaker converts that into one timeout
followed by fast-path fallback until the replica proves healthy again.

The clock is injectable so tests drive state transitions without
sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe failure-rate gate around one unreliable resource.

    Usage::

        if breaker.allow():
            try:
                result = lane_call()
                breaker.record_success()
            except Exception:
                breaker.record_failure()
                result = fallback()
        else:
            result = fallback()

    ``allow()`` in the open state returns ``False`` until
    ``reset_timeout_s`` has elapsed, then lets exactly one probe through
    (half-open); concurrent callers keep getting ``False`` until the
    probe resolves.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_open: Optional[Callable[[], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._on_open = on_open
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._open_count = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def open_count(self) -> int:
        """How many times the breaker has tripped open (monotonic)."""
        return self._open_count

    def allow(self) -> bool:
        """Whether the protected call may proceed right now."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout_s:
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # Half-open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """The protected call succeeded; close (or keep closed)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """The protected call failed; trip open once past threshold."""
        fire = None
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                fire = self._on_open
            else:
                self._failures += 1
                if self._state == CLOSED and self._failures >= self.failure_threshold:
                    self._trip()
                    fire = self._on_open
        if fire is not None:
            fire()

    def _trip(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._probe_in_flight = False
        self._opened_at = self._clock()
        self._open_count += 1
