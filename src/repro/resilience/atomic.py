"""Crash-safe file writes and CRC32 integrity manifests.

A process killed mid-``np.savez`` leaves a half-written archive at the
destination path — the next ``load_model`` then explodes (or worse,
half-loads).  Every persistence writer in the repo routes through the
helpers here instead: data is written to a temporary sibling file,
flushed and ``fsync``\\ ed, and atomically ``os.replace``\\ d over the
destination, so readers only ever observe the old file or the complete
new one.  The containing directory is fsynced too, making the rename
itself durable.

For multi-file artifacts (checkpoints) :func:`write_manifest` /
:func:`verify_manifest` add a CRC32 manifest covering every member
file, so torn *directories* (rename of the dir happened, a member was
silently truncated by the filesystem, bit rot) are detected at load
time instead of producing a half-loaded model.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional, Union

import numpy as np

__all__ = [
    "IntegrityError",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_savez",
    "crc32_file",
    "fsync_directory",
    "write_manifest",
    "verify_manifest",
    "MANIFEST_NAME",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Filename of the integrity manifest inside a checkpoint directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest schema version.
MANIFEST_SCHEMA = 1


class IntegrityError(RuntimeError):
    """A persisted artifact failed its integrity check (truncated file,
    CRC mismatch, unreadable archive).  Loaders raise this instead of
    leaking half-parsed state."""


def fsync_directory(path: PathLike) -> None:
    """fsync a directory so a completed rename survives power loss."""
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dir
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: PathLike, mode: str = "wb") -> Iterator[Any]:
    """Context manager yielding a file handle whose contents replace
    ``path`` atomically on success (tmp + flush + fsync + rename).

    On any exception the temporary file is removed and the destination
    is untouched.  The parent directory is created if missing.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    handle = open(tmp, mode)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
        fsync_directory(directory or ".")
    except BaseException:
        try:
            handle.close()
        except OSError:  # pragma: no cover
            pass
        try:
            os.unlink(tmp)
        except FileNotFoundError:  # pragma: no cover
            pass
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_writer(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_savez(path: PathLike, **arrays: np.ndarray) -> None:
    """``np.savez_compressed`` with the atomic-replace protocol.

    A ``SIGKILL`` mid-save leaves only a ``*.tmp.<pid>`` orphan; the
    previously saved archive at ``path`` stays valid.
    """
    with atomic_writer(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def crc32_file(path: PathLike, chunk_size: int = 1 << 20) -> int:
    """CRC32 of a file's contents (streamed, constant memory)."""
    crc = 0
    with open(os.fspath(path), "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def write_manifest(
    directory: PathLike,
    filenames: Iterable[str],
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``MANIFEST.json`` covering ``filenames`` inside ``directory``.

    Each entry records the file's CRC32 and byte size;
    :func:`verify_manifest` re-checks both.  Returns the manifest path.
    """
    directory = os.fspath(directory)
    files: Dict[str, Dict[str, int]] = {}
    for name in filenames:
        member = os.path.join(directory, name)
        files[name] = {
            "crc32": crc32_file(member),
            "nbytes": os.path.getsize(member),
        }
    manifest = {"schema": MANIFEST_SCHEMA, "files": files}
    if extra:
        manifest.update(extra)
    path = os.path.join(directory, MANIFEST_NAME)
    atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def verify_manifest(directory: PathLike) -> Dict[str, Any]:
    """Validate every file listed in a directory's manifest.

    Returns the parsed manifest on success; raises
    :class:`IntegrityError` naming the first failure (missing manifest,
    unparsable JSON, missing member, size or CRC mismatch).
    """
    directory = os.fspath(directory)
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise IntegrityError(f"{directory}: no {MANIFEST_NAME}") from exc
    except (json.JSONDecodeError, OSError) as exc:
        raise IntegrityError(f"{path}: unreadable manifest: {exc}") from exc
    files = manifest.get("files")
    if not isinstance(files, dict):
        raise IntegrityError(f"{path}: manifest has no file table")
    for name, entry in files.items():
        member = os.path.join(directory, name)
        if not os.path.isfile(member):
            raise IntegrityError(f"{directory}: missing member {name!r}")
        nbytes = os.path.getsize(member)
        if nbytes != entry.get("nbytes"):
            raise IntegrityError(
                f"{member}: size {nbytes} != manifest {entry.get('nbytes')}"
            )
        crc = crc32_file(member)
        if crc != entry.get("crc32"):
            raise IntegrityError(
                f"{member}: CRC32 {crc:#010x} != manifest "
                f"{int(entry.get('crc32', 0)):#010x}"
            )
    return manifest
