"""Deterministic fault injection for tests and the chaos smoke gate.

Production code exposes named **fault points** — bare
``chaos_point("parallel.worker.step", rank=rank)`` calls at the places
where real systems fail.  With no plan active (the default, and the
only state production ever runs in) a fault point is a dictionary probe
and costs nanoseconds.  Tests and the smoke harness *activate* a
:class:`ChaosPlan` mapping points to fault actions (kill the process,
sleep past a deadline, truncate a file, poison a batch with NaNs), so
failure scenarios are driven through the same code paths as real
crashes — no monkeypatching of production internals.

Worker processes inherit the active plan through ``fork`` (the pool's
preferred start method), so a plan activated in the parent before the
pool starts also fires inside workers.

Cross-process one-shot semantics use a **token file**: a fault guarded
by a token fires only if it can atomically ``unlink`` the token first.
A respawned worker (fresh fork, fresh in-process counters) therefore
does *not* re-fire a kill fault whose token was already consumed — the
scenario "kill worker once, recover" stays deterministic.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

__all__ = [
    "ChaosPlan",
    "activate",
    "deactivate",
    "active_plan",
    "chaos_point",
    "make_token",
    "kill_process",
    "delay",
    "truncate_file",
    "poison_arrays",
    "raise_error",
]

#: Exit code used by injected process kills (mirrors SIGKILL's 128+9).
KILL_EXIT_CODE = 137


class _Fault:
    """One installed fault: an action plus its firing conditions."""

    def __init__(
        self,
        action: Callable[[Dict[str, Any]], None],
        after: int = 0,
        times: Optional[int] = 1,
        token: Optional[str] = None,
        match: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.action = action
        self.after = int(after)
        self.times = times
        self.token = token
        self.match = dict(match or {})
        self.calls = 0
        self.fired = 0

    def maybe_fire(self, ctx: Dict[str, Any], point: str = "?") -> None:
        for key, expected in self.match.items():
            if ctx.get(key) != expected:
                return
        self.calls += 1
        if self.calls <= self.after:
            return
        if self.times is not None and self.fired >= self.times:
            return
        if self.token is not None and not _claim_token(self.token):
            return
        self.fired += 1
        # Flight-record *before* the action runs: kill actions never
        # return, and the post-mortem needs to show what pulled the
        # trigger.
        _note_fault_fired(point, self, ctx)
        self.action(ctx)


def _note_fault_fired(point: str, fault: "_Fault", ctx: Dict[str, Any]) -> None:
    """Record a fired fault in the obs flight ring (best-effort).

    Imported lazily: ``repro.obs`` pulls this package in at import
    time, so a top-level import here would be circular.  Only scalar
    context survives — faults may carry whole batch arrays.
    """
    try:
        from ..obs.flight import dump_flight, record_flight_event

        scalars = {
            key: value
            for key, value in ctx.items()
            if isinstance(value, (str, int, float, bool))
        }
        record_flight_event(
            "chaos_fault", point=point, fired=fault.fired, **scalars
        )
        dump_flight("chaos-fault")
    except Exception:  # pragma: no cover - obs must never break chaos
        pass


def _claim_token(path: str) -> bool:
    """Atomically consume a one-shot token file; False if already gone."""
    try:
        os.unlink(path)
        return True
    except FileNotFoundError:
        return False


class ChaosPlan:
    """A set of faults keyed by fault-point name."""

    def __init__(self) -> None:
        self._faults: Dict[str, List[_Fault]] = {}

    def inject(
        self,
        point: str,
        action: Callable[[Dict[str, Any]], None],
        after: int = 0,
        times: Optional[int] = 1,
        token: Optional[str] = None,
        **match: Any,
    ) -> "ChaosPlan":
        """Install ``action`` at ``point``.

        ``after`` skips that many matching calls first; ``times`` caps
        per-process firings (``None`` = unlimited); ``token`` is a
        one-shot token-file path shared across processes; remaining
        keyword arguments must equal the fault point's context for the
        fault to fire (e.g. ``rank=1``).
        """
        self._faults.setdefault(point, []).append(
            _Fault(action, after=after, times=times, token=token, match=match)
        )
        return self

    def fire(self, point: str, ctx: Dict[str, Any]) -> None:
        for fault in self._faults.get(point, ()):
            fault.maybe_fire(ctx, point=point)

    def points(self) -> List[str]:
        return sorted(self._faults)


#: The process-wide active plan (inherited by forked workers).
_ACTIVE: Optional[ChaosPlan] = None


def activate(plan: ChaosPlan) -> None:
    """Make ``plan`` the process-wide active plan."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Clear the active plan (fault points become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def active_plan(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Scope a plan to a ``with`` block (tests' entry point)."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


def chaos_point(point: str, **ctx: Any) -> None:
    """A named fault point; no-op unless a plan is active.

    Production call sites pass whatever context the faults may need —
    a worker rank, a file path, the batch arrays (for in-place
    poisoning).
    """
    plan = _ACTIVE
    if plan is not None:
        plan.fire(point, ctx)


# ----------------------------------------------------------------------
# Fault actions
# ----------------------------------------------------------------------
def make_token(directory: str, name: str = "chaos.token") -> str:
    """Create a one-shot token file and return its path."""
    path = os.path.join(directory, name)
    with open(path, "wb"):
        pass
    return path


def kill_process(ctx: Dict[str, Any]) -> None:
    """Die instantly, skipping atexit/finally — a simulated SIGKILL."""
    os._exit(KILL_EXIT_CODE)


def delay(seconds: float) -> Callable[[Dict[str, Any]], None]:
    """Stall the caller (simulates a wedged worker / slow heartbeat)."""

    def act(ctx: Dict[str, Any]) -> None:
        time.sleep(seconds)

    return act


def truncate_file(nbytes: int = 16, key: str = "path") -> Callable[[Dict[str, Any]], None]:
    """Truncate the file named by ``ctx[key]`` to ``nbytes`` bytes."""

    def act(ctx: Dict[str, Any]) -> None:
        with open(ctx[key], "r+b") as handle:
            handle.truncate(nbytes)

    return act


def poison_arrays(*keys: str) -> Callable[[Dict[str, Any]], None]:
    """Overwrite the named context arrays with NaN in place.

    Only float arrays can hold NaN; integer arrays raise, which is a
    test-authoring error, not a runtime concern.
    """

    def act(ctx: Dict[str, Any]) -> None:
        for key in keys:
            ctx[key][...] = np.nan

    return act


def raise_error(exc: BaseException) -> Callable[[Dict[str, Any]], None]:
    """Raise ``exc`` at the fault point (simulates an internal error)."""

    def act(ctx: Dict[str, Any]) -> None:
        raise exc

    return act
