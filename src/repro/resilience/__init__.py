"""``repro.resilience`` — fault tolerance for training and serving.

The paper's selective classifier already degrades gracefully at the
*model* level (abstain instead of misclassify, PAPER.md Sec. II); this
package applies the same philosophy to the *system* level — detect the
fault, degrade to a safe path, recover, and surface it through
``repro.obs``:

* :mod:`~repro.resilience.atomic` — crash-safe file writes (tmp +
  fsync + rename) and CRC32 manifests; :class:`IntegrityError` is what
  every loader raises on torn artifacts.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, bounded
  exponential backoff with seed-derived jitter (worker respawn).
* :mod:`~repro.resilience.checkpoint` — :class:`CheckpointManager`,
  atomic checkpoint directories covering model + optimizer + RNG +
  epoch; ``latest_valid()`` skips corrupt checkpoints on resume.
* :mod:`~repro.resilience.watchdog` — :class:`TrainingWatchdog`,
  NaN/Inf and gradient-explosion tripwire driving checkpoint rollback.
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker`, the
  per-lane open/half-open/closed gate used by the serving engine.
* :mod:`~repro.resilience.chaos` — deterministic fault injection
  (kill-worker, delay-heartbeat, truncate-checkpoint, poison-batch)
  through named fault points; ``python -m repro.resilience.smoke`` is
  the end-to-end chaos gate.

Consumers: ``repro.parallel`` (supervised workers, step retry, serial
fallback), ``repro.core.trainer`` (crash-safe checkpoints, watchdog
rollback, ``fit(resume="auto")``), ``repro.serve`` (breaker lanes,
replica respawn, in-process fallback, input rejection).
"""

from .atomic import (
    IntegrityError,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    crc32_file,
    verify_manifest,
    write_manifest,
)
from .breaker import CircuitBreaker
from .chaos import ChaosPlan, activate, active_plan, chaos_point, deactivate
from .checkpoint import AsyncSaveHandle, CheckpointManager, validate_checkpoint
from .retry import RetryPolicy
from .watchdog import TrainingWatchdog

__all__ = [
    "IntegrityError",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_savez",
    "crc32_file",
    "write_manifest",
    "verify_manifest",
    "RetryPolicy",
    "CircuitBreaker",
    "TrainingWatchdog",
    "CheckpointManager",
    "AsyncSaveHandle",
    "validate_checkpoint",
    "ChaosPlan",
    "chaos_point",
    "activate",
    "deactivate",
    "active_plan",
]
