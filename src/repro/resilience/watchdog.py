"""Training-health watchdog: catch NaN/Inf loss and gradient blow-ups.

A NaN loss does not crash numpy training — it silently propagates
through Adam into every parameter and poisons the rest of the run.
:class:`TrainingWatchdog` is the per-batch tripwire: the trainer feeds
it each batch's loss and pre-clip gradient norm, and a non-``None``
return means "this step must not be applied" — the trainer rolls back
to the last good checkpoint with a learning-rate cut instead of dying
(see ``Trainer.fit``).
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["TrainingWatchdog"]


class TrainingWatchdog:
    """Detects divergence signals in the per-batch training telemetry.

    Parameters
    ----------
    grad_norm_limit:
        Absolute bound on the global L2 gradient norm; ``None`` disables
        the explosion check (non-finite values still trip).
    loss_limit:
        Absolute bound on the batch loss; ``None`` disables it.
    """

    def __init__(
        self,
        grad_norm_limit: Optional[float] = None,
        loss_limit: Optional[float] = None,
    ) -> None:
        if grad_norm_limit is not None and grad_norm_limit <= 0:
            raise ValueError("grad_norm_limit must be positive when set")
        if loss_limit is not None and loss_limit <= 0:
            raise ValueError("loss_limit must be positive when set")
        self.grad_norm_limit = grad_norm_limit
        self.loss_limit = loss_limit
        self.trips = 0

    def check(self, loss: float, grad_norm: Optional[float] = None) -> Optional[str]:
        """Return a trip reason, or ``None`` when the step looks healthy."""
        reason = self._inspect(loss, grad_norm)
        if reason is not None:
            self.trips += 1
            self._note_trip(reason, loss, grad_norm)
        return reason

    @staticmethod
    def _note_trip(reason: str, loss: float, grad_norm: Optional[float]) -> None:
        """Best-effort flight-ring record; lazy import avoids the
        ``repro.obs`` → ``repro.resilience`` import cycle."""
        try:
            from ..obs.flight import record_flight_event

            record_flight_event(
                "watchdog_trip",
                reason=reason,
                loss=repr(loss),
                grad_norm=repr(grad_norm),
            )
        except Exception:  # pragma: no cover - obs must never break checks
            pass

    def _inspect(self, loss: float, grad_norm: Optional[float]) -> Optional[str]:
        if not math.isfinite(loss):
            return f"non-finite loss ({loss!r})"
        if grad_norm is not None and not math.isfinite(grad_norm):
            return f"non-finite gradient norm ({grad_norm!r})"
        if self.loss_limit is not None and loss > self.loss_limit:
            return f"loss {loss:.4g} exceeds limit {self.loss_limit:.4g}"
        if (
            self.grad_norm_limit is not None
            and grad_norm is not None
            and grad_norm > self.grad_norm_limit
        ):
            return (
                f"gradient norm {grad_norm:.4g} exceeds limit "
                f"{self.grad_norm_limit:.4g}"
            )
        return None
