"""Crash-safe training checkpoints: atomic directories + CRC manifests.

A checkpoint is one directory ``ckpt-<epoch>`` holding the model
weights, the optimizer slots, the trainer's RNG state, and arbitrary
extra bookkeeping, covered by a CRC32 :data:`~.atomic.MANIFEST_NAME`.
Writes are staged in a temporary sibling directory and published with
one ``rename``, so a ``SIGKILL`` at any instant leaves either the
previous checkpoint set or the previous set plus one complete new
checkpoint — never a torn directory that loads half a model.

:meth:`CheckpointManager.latest_valid` is the resume entry point: it
walks checkpoints newest-first, CRC-verifies each, and *skips* corrupt
ones with a logged warning (counted in
``train.checkpoint.corrupt_skipped``) instead of refusing to resume.
Verified manifests are memoized by ``(path, mtime_ns, size)`` so the
shadow-retrain loop can poll ``latest_valid()`` every stream step
without re-reading checkpoint bytes.

:meth:`CheckpointManager.save` also has an asynchronous mode
(``async_=True``): the model / optimizer / RNG state is *snapshotted
synchronously* (so training may mutate parameters immediately after
the call returns) while staging, fsync and the atomic publish rename
run on a background thread.  The returned :class:`AsyncSaveHandle`
joins the publish; a crash at any point before the rename leaves
``latest_valid()`` on the previous checkpoint (chaos point
``checkpoint.async.publish``).
"""

from __future__ import annotations

import json
import logging
import os
import re
import shutil
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .atomic import (
    IntegrityError,
    MANIFEST_NAME,
    atomic_savez,
    atomic_write_text,
    fsync_directory,
    verify_manifest,
    write_manifest,
)
from .chaos import chaos_point

__all__ = [
    "AsyncSaveHandle",
    "CheckpointManager",
    "IntegrityError",
    "validate_checkpoint",
]

logger = logging.getLogger("repro.resilience")

_CKPT_RE = re.compile(r"^ckpt-(\d{5})$")
_MODEL_FILE = "model.npz"
_OPTIMIZER_FILE = "optimizer.npz"
_STATE_FILE = "state.json"

#: ``state.json`` schema version.
STATE_SCHEMA = 1


def _registry(registry):
    if registry is not None:
        return registry
    from ..obs.metrics import default_registry

    return default_registry()


def validate_checkpoint(path: str) -> Dict[str, Any]:
    """CRC-verify one checkpoint directory and return its ``state.json``.

    Raises :class:`IntegrityError` on a missing/torn manifest, an
    unreadable state file, or a state schema newer than this code
    understands.  Module-level so consumers that hold only a path (the
    serving engine's ``swap_model``) verify with the same rules as the
    manager that wrote it.
    """
    verify_manifest(path)
    try:
        with open(os.path.join(path, _STATE_FILE), "r", encoding="utf-8") as fh:
            state = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"{path}: unreadable state.json: {exc}") from exc
    if state.get("schema", 0) > STATE_SCHEMA:
        raise IntegrityError(
            f"{path}: state schema {state.get('schema')} is newer than "
            f"supported version {STATE_SCHEMA}"
        )
    return state


def _manifest_stamp(path: str) -> Optional[Tuple[int, int]]:
    """Freshness key for a verified checkpoint: manifest (mtime_ns, size)."""
    try:
        st = os.stat(os.path.join(path, MANIFEST_NAME))
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


class AsyncSaveHandle:
    """Join handle for one in-flight asynchronous checkpoint publish."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._done = threading.Event()
        self._error: Optional[BaseException] = None

    def _finish(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        """True once the publish finished (successfully or not)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the checkpoint is durable; returns its path.

        Re-raises whatever the background writer raised, so a failed
        publish surfaces on the caller's thread instead of vanishing.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"async checkpoint save of {self.path} still running")
        if self._error is not None:
            raise self._error
        return self.path


def _copy_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """Deep-copy array values so later training steps can't mutate the
    snapshot while the background writer serializes it."""
    out: Dict[str, Any] = {}
    for key, value in state.items():
        out[key] = value.copy() if isinstance(value, np.ndarray) else value
    return out


class CheckpointManager:
    """Owns one checkpoint directory tree and its retention policy.

    Parameters
    ----------
    directory:
        Root under which ``ckpt-<epoch>`` directories are created.
    keep:
        Retention bound — after each save only the newest ``keep``
        checkpoints survive (older ones are pruned).  ``0`` keeps all.
    registry:
        Metrics sink for save / corrupt-skip counters; defaults to the
        process-global registry.
    """

    def __init__(self, directory: str, keep: int = 3, registry=None) -> None:
        if keep < 0:
            raise ValueError("keep must be non-negative")
        self.directory = os.fspath(directory)
        self.keep = int(keep)
        reg = _registry(registry)
        self._saves = reg.counter("train.checkpoint.saves")
        self._async_saves = reg.counter("train.checkpoint.async_saves")
        self._corrupt_skipped = reg.counter("train.checkpoint.corrupt_skipped")
        self._verify_hits = reg.counter("train.checkpoint.verify_cache_hits")
        # (path -> (manifest stamp, state)) for checkpoints that passed
        # CRC verification; consulted by validate()/latest_valid().
        self._verified: Dict[str, Tuple[Tuple[int, int], Dict[str, Any]]] = {}
        # Serializes the write/publish phase across the caller thread
        # and background async writers.
        self._write_lock = threading.Lock()
        self._pending: List[AsyncSaveHandle] = []
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------
    def save(
        self,
        epoch: int,
        model=None,
        optimizer=None,
        rng=None,
        extra: Optional[Dict[str, Any]] = None,
        async_: bool = False,
    ):
        """Write one complete checkpoint for ``epoch``.

        ``rng`` is a ``numpy.random.Generator`` whose bit-generator
        state is captured so a resumed run consumes the exact same
        shuffle stream as the uninterrupted one.

        With ``async_=False`` (default) blocks until the checkpoint is
        durable and returns its path.  With ``async_=True`` the state
        is snapshotted before returning, the disk work happens on a
        daemon thread, and an :class:`AsyncSaveHandle` is returned;
        call :meth:`AsyncSaveHandle.wait` (or
        :meth:`wait_pending`) before depending on durability.
        """
        model_state = None if model is None else _copy_state(model.state_dict())
        opt_state = None if optimizer is None else _copy_state(optimizer.state_dict())
        state_payload = {
            "schema": STATE_SCHEMA,
            "epoch": int(epoch),
            "rng_state": None if rng is None else rng.bit_generator.state,
            "extra": extra or {},
        }
        final = os.path.join(self.directory, f"ckpt-{epoch:05d}")
        if not async_:
            self._write_and_publish(final, model_state, opt_state, state_payload, async_=False)
            return final

        handle = AsyncSaveHandle(final)
        with self._pending_lock:
            self._pending.append(handle)

        def _writer() -> None:
            try:
                self._write_and_publish(final, model_state, opt_state, state_payload, async_=True)
            except BaseException as exc:  # surfaced via handle.wait()
                handle._finish(exc)
            else:
                handle._finish()

        thread = threading.Thread(
            target=_writer, name=f"ckpt-async-{epoch:05d}", daemon=True
        )
        thread.start()
        return handle

    def _write_and_publish(
        self,
        final: str,
        model_state: Optional[Dict[str, Any]],
        opt_state: Optional[Dict[str, Any]],
        state_payload: Dict[str, Any],
        async_: bool,
    ) -> None:
        epoch = int(state_payload["epoch"])
        with self._write_lock:
            staging = f"{final}.tmp.{os.getpid()}"
            if os.path.isdir(staging):  # stale orphan from a crashed save
                shutil.rmtree(staging)
            os.makedirs(staging)
            try:
                members: List[str] = []
                if model_state is not None:
                    atomic_savez(os.path.join(staging, _MODEL_FILE), **model_state)
                    members.append(_MODEL_FILE)
                if opt_state is not None:
                    atomic_savez(os.path.join(staging, _OPTIMIZER_FILE), **opt_state)
                    members.append(_OPTIMIZER_FILE)
                atomic_write_text(
                    os.path.join(staging, _STATE_FILE),
                    json.dumps(state_payload, sort_keys=True) + "\n",
                )
                members.append(_STATE_FILE)
                write_manifest(staging, members, extra={"epoch": epoch})
                if async_:
                    # A kill here must leave only the staging dir — the
                    # previous latest_valid() stays intact (chaos smoke
                    # pins this).
                    chaos_point("checkpoint.async.publish", path=final, epoch=epoch)
                # Publish: move any previous same-epoch checkpoint aside
                # (rollback re-runs epochs), then one atomic rename.
                if os.path.isdir(final):
                    self._verified.pop(final, None)
                    shutil.rmtree(final)
                os.rename(staging, final)
                fsync_directory(self.directory)
            except BaseException:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            self._saves.inc()
            if async_:
                self._async_saves.inc()
            self._prune()

    def wait_pending(self, timeout: Optional[float] = None) -> List[str]:
        """Join every outstanding async save; returns their paths.

        Raises the first writer error encountered (after waiting on
        all of them), so callers that rely on durability — rollback,
        resume, end of ``fit`` — never proceed past a silently failed
        publish.
        """
        with self._pending_lock:
            pending, self._pending = self._pending, []
        paths: List[str] = []
        first_error: Optional[BaseException] = None
        for handle in pending:
            try:
                paths.append(handle.wait(timeout))
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return paths

    # ------------------------------------------------------------------
    def checkpoints(self) -> List[str]:
        """All checkpoint paths, oldest first (no validity check)."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _CKPT_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        return [path for _, path in sorted(found)]

    def validate(self, path: str) -> Dict[str, Any]:
        """CRC-verify one checkpoint and return its ``state.json``.

        Successful verifications are memoized by the manifest's
        ``(mtime_ns, size)`` stamp, so re-validating an unchanged
        checkpoint costs one ``stat`` instead of a full CRC pass.
        """
        stamp = _manifest_stamp(path)
        if stamp is not None:
            cached = self._verified.get(path)
            if cached is not None and cached[0] == stamp:
                self._verify_hits.inc()
                return cached[1]
        state = validate_checkpoint(path)
        if stamp is not None:
            self._verified[path] = (stamp, state)
        return state

    def latest_valid(self) -> Optional[str]:
        """Newest checkpoint that passes validation, skipping corrupt
        ones with a warning; ``None`` when nothing valid exists."""
        for path in reversed(self.checkpoints()):
            try:
                self.validate(path)
                return path
            except IntegrityError as exc:
                self._corrupt_skipped.inc()
                logger.warning("skipping corrupt checkpoint %s: %s", path, exc)
        return None

    # ------------------------------------------------------------------
    def load(self, path: str, model=None, optimizer=None) -> Dict[str, Any]:
        """Restore ``model`` / ``optimizer`` from a verified checkpoint.

        Returns the state mapping (``epoch``, ``rng_state``, ``extra``).
        Verification happens *before* any mutation, so a corrupt
        checkpoint raises :class:`IntegrityError` without half-loading.
        """
        from ..nn.serialization import load_model, load_optimizer

        state = self.validate(path)
        if model is not None:
            load_model(model, os.path.join(path, _MODEL_FILE))
        if optimizer is not None:
            load_optimizer(optimizer, os.path.join(path, _OPTIMIZER_FILE))
        return state

    @staticmethod
    def restore_rng(rng, rng_state: Dict[str, Any]) -> None:
        """Load a captured bit-generator state back into ``rng``."""
        rng.bit_generator.state = rng_state

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        if self.keep == 0:
            return
        stale = self.checkpoints()[:-self.keep]
        for path in stale:
            self._verified.pop(path, None)
            shutil.rmtree(path, ignore_errors=True)
