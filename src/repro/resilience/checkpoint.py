"""Crash-safe training checkpoints: atomic directories + CRC manifests.

A checkpoint is one directory ``ckpt-<epoch>`` holding the model
weights, the optimizer slots, the trainer's RNG state, and arbitrary
extra bookkeeping, covered by a CRC32 :data:`~.atomic.MANIFEST_NAME`.
Writes are staged in a temporary sibling directory and published with
one ``rename``, so a ``SIGKILL`` at any instant leaves either the
previous checkpoint set or the previous set plus one complete new
checkpoint — never a torn directory that loads half a model.

:meth:`CheckpointManager.latest_valid` is the resume entry point: it
walks checkpoints newest-first, CRC-verifies each, and *skips* corrupt
ones with a logged warning (counted in
``train.checkpoint.corrupt_skipped``) instead of refusing to resume.
"""

from __future__ import annotations

import json
import logging
import os
import re
import shutil
from typing import Any, Dict, List, Optional

from .atomic import (
    IntegrityError,
    atomic_write_text,
    fsync_directory,
    verify_manifest,
    write_manifest,
)

__all__ = ["CheckpointManager", "IntegrityError"]

logger = logging.getLogger("repro.resilience")

_CKPT_RE = re.compile(r"^ckpt-(\d{5})$")
_MODEL_FILE = "model.npz"
_OPTIMIZER_FILE = "optimizer.npz"
_STATE_FILE = "state.json"

#: ``state.json`` schema version.
STATE_SCHEMA = 1


def _registry(registry):
    if registry is not None:
        return registry
    from ..obs.metrics import default_registry

    return default_registry()


class CheckpointManager:
    """Owns one checkpoint directory tree and its retention policy.

    Parameters
    ----------
    directory:
        Root under which ``ckpt-<epoch>`` directories are created.
    keep:
        Retention bound — after each save only the newest ``keep``
        checkpoints survive (older ones are pruned).  ``0`` keeps all.
    registry:
        Metrics sink for save / corrupt-skip counters; defaults to the
        process-global registry.
    """

    def __init__(self, directory: str, keep: int = 3, registry=None) -> None:
        if keep < 0:
            raise ValueError("keep must be non-negative")
        self.directory = os.fspath(directory)
        self.keep = int(keep)
        reg = _registry(registry)
        self._saves = reg.counter("train.checkpoint.saves")
        self._corrupt_skipped = reg.counter("train.checkpoint.corrupt_skipped")

    # ------------------------------------------------------------------
    def save(
        self,
        epoch: int,
        model=None,
        optimizer=None,
        rng=None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write one complete checkpoint for ``epoch``; returns its path.

        ``rng`` is a ``numpy.random.Generator`` whose bit-generator
        state is captured so a resumed run consumes the exact same
        shuffle stream as the uninterrupted one.
        """
        from ..nn.serialization import save_model, save_optimizer

        final = os.path.join(self.directory, f"ckpt-{epoch:05d}")
        staging = f"{final}.tmp.{os.getpid()}"
        if os.path.isdir(staging):  # stale orphan from a crashed save
            shutil.rmtree(staging)
        os.makedirs(staging)
        try:
            members: List[str] = []
            if model is not None:
                save_model(model, os.path.join(staging, _MODEL_FILE))
                members.append(_MODEL_FILE)
            if optimizer is not None:
                save_optimizer(optimizer, os.path.join(staging, _OPTIMIZER_FILE))
                members.append(_OPTIMIZER_FILE)
            state = {
                "schema": STATE_SCHEMA,
                "epoch": int(epoch),
                "rng_state": None if rng is None else rng.bit_generator.state,
                "extra": extra or {},
            }
            atomic_write_text(
                os.path.join(staging, _STATE_FILE),
                json.dumps(state, sort_keys=True) + "\n",
            )
            members.append(_STATE_FILE)
            write_manifest(staging, members, extra={"epoch": int(epoch)})
            # Publish: move any previous same-epoch checkpoint aside
            # (rollback re-runs epochs), then one atomic rename.
            if os.path.isdir(final):
                shutil.rmtree(final)
            os.rename(staging, final)
            fsync_directory(self.directory)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._saves.inc()
        self._prune()
        return final

    # ------------------------------------------------------------------
    def checkpoints(self) -> List[str]:
        """All checkpoint paths, oldest first (no validity check)."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _CKPT_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        return [path for _, path in sorted(found)]

    def validate(self, path: str) -> Dict[str, Any]:
        """CRC-verify one checkpoint and return its ``state.json``."""
        verify_manifest(path)
        try:
            with open(os.path.join(path, _STATE_FILE), "r", encoding="utf-8") as fh:
                state = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise IntegrityError(f"{path}: unreadable state.json: {exc}") from exc
        if state.get("schema", 0) > STATE_SCHEMA:
            raise IntegrityError(
                f"{path}: state schema {state.get('schema')} is newer than "
                f"supported version {STATE_SCHEMA}"
            )
        return state

    def latest_valid(self) -> Optional[str]:
        """Newest checkpoint that passes validation, skipping corrupt
        ones with a warning; ``None`` when nothing valid exists."""
        for path in reversed(self.checkpoints()):
            try:
                self.validate(path)
                return path
            except IntegrityError as exc:
                self._corrupt_skipped.inc()
                logger.warning("skipping corrupt checkpoint %s: %s", path, exc)
        return None

    # ------------------------------------------------------------------
    def load(self, path: str, model=None, optimizer=None) -> Dict[str, Any]:
        """Restore ``model`` / ``optimizer`` from a verified checkpoint.

        Returns the state mapping (``epoch``, ``rng_state``, ``extra``).
        Verification happens *before* any mutation, so a corrupt
        checkpoint raises :class:`IntegrityError` without half-loading.
        """
        from ..nn.serialization import load_model, load_optimizer

        state = self.validate(path)
        if model is not None:
            load_model(model, os.path.join(path, _MODEL_FILE))
        if optimizer is not None:
            load_optimizer(optimizer, os.path.join(path, _OPTIMIZER_FILE))
        return state

    @staticmethod
    def restore_rng(rng, rng_state: Dict[str, Any]) -> None:
        """Load a captured bit-generator state back into ``rng``."""
        rng.bit_generator.state = rng_state

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        if self.keep == 0:
            return
        stale = self.checkpoints()[:-self.keep]
        for path in stale:
            shutil.rmtree(path, ignore_errors=True)
