"""Experiment: Fig. 5 — selective accuracy and coverage vs c0.

Sweeps the target coverage ``c0`` over {0.2, 0.5, 0.75, 1.0} (the
paper's grid).  For ``c0 = 1`` the model trains with plain
cross-entropy and covers the whole test set; below 1 the selective
objective and threshold calibration apply.  The reproduced figure is
the pair of series (selective accuracy, realized coverage) vs ``c0``
showing the risk-coverage trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.augmentation import augment_dataset
from ..core.pipeline import FullCoverageWaferClassifier, SelectiveWaferClassifier
from ..metrics.classification import accuracy
from ..metrics.reporting import format_table
from ..metrics.selective import evaluate_selective
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["Fig5Point", "Fig5Result", "run_fig5", "PAPER_C0_GRID"]

#: The c0 grid of Fig. 5.
PAPER_C0_GRID = (0.2, 0.5, 0.75, 1.0)


@dataclass
class Fig5Point:
    """One point of the Fig. 5 curves."""

    target_coverage: float
    selective_accuracy: float
    realized_coverage: float


@dataclass
class Fig5Result:
    """The two series of Fig. 5."""

    points: List[Fig5Point]

    def format_report(self) -> str:
        return format_table(
            ["c0", "selective accuracy", "test coverage"],
            [
                (p.target_coverage, p.selective_accuracy, p.realized_coverage)
                for p in self.points
            ],
            title="Fig. 5: risk-coverage trade-off",
            float_digits=3,
        )

    def accuracies(self) -> List[float]:
        return [p.selective_accuracy for p in self.points]

    def coverages(self) -> List[float]:
        return [p.realized_coverage for p in self.points]

    def plot(self, width: int = 56, height: int = 14) -> str:
        """ASCII rendering of the Fig. 5 chart (two series vs c0)."""
        from ..viz import line_plot

        return line_plot(
            [p.target_coverage for p in self.points],
            [
                ("selective accuracy", self.accuracies()),
                ("test coverage", self.coverages()),
            ],
            width=width,
            height=height,
            title="Fig. 5: selective accuracy & coverage vs c0",
            x_label="target coverage c0",
            y_range=(0.0, 1.0),
        )


def run_fig5(
    config: Optional[ExperimentConfig] = None,
    coverages: Sequence[float] = PAPER_C0_GRID,
    data: Optional[ExperimentData] = None,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> Fig5Result:
    """Sweep c0 and record (selective accuracy, realized coverage)."""
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()

    train = data.train
    if use_augmentation:
        train = augment_dataset(train, config.augmentation())

    points: List[Fig5Point] = []
    for coverage in coverages:
        if verbose:
            print(f"c0={coverage} ...")
        if coverage >= 1.0:
            model = FullCoverageWaferClassifier(
                backbone=config.backbone(), train=config.train_config(1.0)
            )
            model.fit(train, validation=data.validation)
            predictions = model.predict_dataset(data.test)
            points.append(
                Fig5Point(
                    target_coverage=1.0,
                    selective_accuracy=accuracy(data.test.labels, predictions),
                    realized_coverage=1.0,
                )
            )
            continue
        classifier = SelectiveWaferClassifier(
            target_coverage=coverage,
            backbone=config.backbone(),
            train=config.train_config(coverage),
        )
        classifier.fit(train, validation=data.validation, calibrate=True)
        prediction = classifier.predict_dataset(data.test)
        evaluation = evaluate_selective(prediction, data.test.labels, data.test.class_names)
        points.append(
            Fig5Point(
                target_coverage=coverage,
                selective_accuracy=evaluation.overall_accuracy,
                realized_coverage=evaluation.overall_coverage,
            )
        )
    return Fig5Result(points=points)
