"""Experiment: Fig. 4 — original vs synthetic augmented samples.

For each defect class, trains the class auto-encoder and runs
Algorithm 1 to generate synthetic wafers, returning one (original,
synthetic) pair per class — the two rows of the paper's Fig. 4 — plus
fidelity statistics (failure-rate deltas and reconstruction error) that
quantify how close the synthetics sit to the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.augmentation import AugmentationConfig, augment_class
from ..data.dataset import WaferDataset
from ..data.wafer import failure_rate, render_ascii
from ..metrics.reporting import format_table
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["Fig4ClassSample", "Fig4Result", "run_fig4", "DEFAULT_FIG4_CLASSES"]

#: The defect classes shown in the paper's Fig. 4 (all but None).
DEFAULT_FIG4_CLASSES = (
    "Center",
    "Donut",
    "Edge-Loc",
    "Edge-Ring",
    "Location",
    "Near-Full",
    "Random",
    "Scratch",
)


@dataclass
class Fig4ClassSample:
    """An original/synthetic wafer pair for one class."""

    class_name: str
    original: np.ndarray
    synthetic: np.ndarray
    original_failure_rate: float
    synthetic_failure_rate: float
    synthetic_count: int


@dataclass
class Fig4Result:
    """Original-vs-synthetic panel (the two rows of Fig. 4)."""

    samples: List[Fig4ClassSample]

    def format_report(self, ascii_art: bool = False) -> str:
        rows = [
            (
                s.class_name,
                s.original_failure_rate,
                s.synthetic_failure_rate,
                s.synthetic_count,
            )
            for s in self.samples
        ]
        text = format_table(
            ["Class", "orig fail rate", "synth fail rate", "# synthetic"],
            rows,
            title="Fig. 4: data augmentation fidelity",
            float_digits=3,
        )
        if ascii_art:
            panels = []
            for s in self.samples:
                panels.append(
                    f"--- {s.class_name}: original ---\n{render_ascii(s.original)}\n"
                    f"--- {s.class_name}: synthetic ---\n{render_ascii(s.synthetic)}"
                )
            text = text + "\n\n" + "\n\n".join(panels)
        return text


def run_fig4(
    config: Optional[ExperimentConfig] = None,
    data: Optional[ExperimentData] = None,
    classes: Tuple[str, ...] = DEFAULT_FIG4_CLASSES,
    verbose: bool = False,
) -> Fig4Result:
    """Generate synthetic samples per class and collect sample pairs."""
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()
    train = data.train

    samples: List[Fig4ClassSample] = []
    for name in classes:
        if name not in train.class_names:
            raise ValueError(f"{name!r} is not a dataset class")
        label = train.class_names.index(name)
        originals = train.grids[train.labels == label]
        if len(originals) == 0:
            continue
        if verbose:
            print(f"augmenting {name} ({len(originals)} originals) ...")
        aug_config = AugmentationConfig(
            # Ensure at least one synthetic per original.
            target_count=max(config.augment_target, 2 * len(originals)),
            latent_sigma=config.augment_sigma,
            synthetic_weight=config.augment_weight,
            ae_epochs=config.ae_epochs,
            seed=config.seed,
        )
        synthetic = augment_class(originals, aug_config)
        samples.append(
            Fig4ClassSample(
                class_name=name,
                original=originals[0],
                synthetic=synthetic[0],
                original_failure_rate=float(
                    np.mean([failure_rate(grid) for grid in originals])
                ),
                synthetic_failure_rate=float(
                    np.mean([failure_rate(grid) for grid in synthetic])
                ),
                synthetic_count=len(synthetic),
            )
        )
    return Fig4Result(samples=samples)
