"""Experiment: Table III — full-coverage CNN vs the SVM baseline.

Trains the paper's CNN with plain cross-entropy (the ``c0 = 1`` case)
and the Radon+geometry one-vs-one SVM of Wu et al. on the same data,
then reports both confusion matrices, overall accuracies, and the
defect-class detection rates (the paper's 94%/86% vs 91%/72% numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.augmentation import augment_dataset
from ..core.pipeline import FullCoverageWaferClassifier
from ..metrics.classification import accuracy, confusion_matrix, defect_detection_rate
from ..metrics.reporting import format_confusion_matrix, format_percent
from ..svm.baseline import SVMBaseline
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    """Results of the Table III reproduction."""

    cnn_confusion: np.ndarray
    svm_confusion: np.ndarray
    cnn_accuracy: float
    svm_accuracy: float
    cnn_defect_rate: float
    svm_defect_rate: float
    class_names: Tuple[str, ...]

    def format_report(self) -> str:
        return "\n\n".join(
            [
                format_confusion_matrix(
                    self.cnn_confusion,
                    self.class_names,
                    title=(
                        f"Proposed CNN (full coverage): accuracy="
                        f"{format_percent(self.cnn_accuracy)}, defect detection="
                        f"{format_percent(self.cnn_defect_rate)}"
                    ),
                ),
                format_confusion_matrix(
                    self.svm_confusion,
                    self.class_names,
                    title=(
                        f"SVM baseline [2]: accuracy={format_percent(self.svm_accuracy)}, "
                        f"defect detection={format_percent(self.svm_defect_rate)}"
                    ),
                ),
            ]
        )


def run_table3(
    config: Optional[ExperimentConfig] = None,
    data: Optional[ExperimentData] = None,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> Table3Result:
    """Train both models on identical data and compare."""
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()

    cnn_train = data.train
    if use_augmentation:
        cnn_train = augment_dataset(cnn_train, config.augmentation())

    if verbose:
        print("training full-coverage CNN ...")
    cnn = FullCoverageWaferClassifier(
        backbone=config.backbone(),
        train=config.train_config(1.0),
    )
    cnn.fit(cnn_train, validation=data.validation)
    cnn_predictions = cnn.predict_dataset(data.test)

    if verbose:
        print("training SVM baseline ...")
    # The baseline trains on original (non-augmented) data, as in [2].
    svm = SVMBaseline(
        c=config.svm_c, max_iterations=config.svm_max_iterations, seed=config.seed
    )
    svm.fit(data.train)
    svm_predictions = svm.predict(data.test)

    num_classes = data.test.num_classes
    cnn_matrix = confusion_matrix(data.test.labels, cnn_predictions, num_classes)
    svm_matrix = confusion_matrix(data.test.labels, svm_predictions, num_classes)
    return Table3Result(
        cnn_confusion=cnn_matrix,
        svm_confusion=svm_matrix,
        cnn_accuracy=accuracy(data.test.labels, cnn_predictions),
        svm_accuracy=accuracy(data.test.labels, svm_predictions),
        cnn_defect_rate=defect_detection_rate(cnn_matrix, data.test.class_names),
        svm_defect_rate=defect_detection_rate(svm_matrix, data.test.class_names),
        class_names=data.test.class_names,
    )
