"""Experiment: Fig. 1 — one sample wafer map per defect class.

The paper's Fig. 1 shows an example wafer for each of the nine pattern
types.  This module draws one representative sample per class from the
synthetic generators and renders them for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..data.patterns import CLASS_NAMES, make_generator
from ..data.wafer import failure_rate, grid_to_pixels, render_ascii

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    """One sample grid per class, in canonical class order."""

    samples: Dict[str, np.ndarray]

    def format_report(self, ascii_art: bool = True) -> str:
        sections = []
        for name, grid in self.samples.items():
            header = f"--- {name} (failure rate {failure_rate(grid):.2f}) ---"
            if ascii_art:
                sections.append(f"{header}\n{render_ascii(grid)}")
            else:
                sections.append(header)
        return "\n".join(sections)

    def pixel_images(self) -> Dict[str, np.ndarray]:
        """The samples as {0,127,255} images, the paper's rendering."""
        return {name: grid_to_pixels(grid) for name, grid in self.samples.items()}


def run_fig1(size: int = 32, seed: int = 0) -> Fig1Result:
    """Draw one wafer per class."""
    rng = np.random.default_rng(seed)
    samples = {name: make_generator(name, size=size).sample(rng) for name in CLASS_NAMES}
    return Fig1Result(samples=samples)
