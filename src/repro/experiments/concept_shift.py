"""Experiment: Sec. IV-A / IV-D — concept-shift detection via coverage.

The paper observes that when the test distribution drifts away from the
training one, the selective model's realized coverage collapses far
below the target — "raising a flag that the model needs to be
retrained".  (They saw ~5% realized coverage at a 50% target on the
incoherent WM-811K "Test" split.)

This experiment reproduces the phenomenon by constructing a shifted
test distribution: pattern generators with perturbed parameter ranges
(heavier background noise) plus a slice of multi-defect (mixed) wafers,
and comparing realized coverage on in-distribution vs shifted data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.augmentation import augment_dataset
from ..core.pipeline import SelectiveWaferClassifier
from ..data.dataset import WaferDataset
from ..data.patterns import CLASS_NAMES, MixedPattern, make_generator
from ..metrics.reporting import format_percent, format_table
from ..metrics.selective import evaluate_selective
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["ConceptShiftResult", "run_concept_shift", "make_shifted_dataset"]


def make_shifted_dataset(
    counts: Dict[str, int],
    size: int,
    seed: int,
    background_rate: Tuple[float, float] = (0.07, 0.12),
    mixed_fraction: float = 0.5,
) -> WaferDataset:
    """Generate a distribution-shifted test set.

    Shift mechanics: every class generator runs with a background
    failure rate in the *ambiguity zone* between the None class
    (<= 0.04) and the Random class (>= 0.18) — heavier noise would
    simply recreate in-distribution Random wafers, which a correct
    model rightly labels with confidence — and ``mixed_fraction`` of
    the samples are replaced by two-pattern wafers (labeled with the
    first component, as WM-811K would).
    """
    rng = np.random.default_rng(seed)
    grids: List[np.ndarray] = []
    labels: List[int] = []
    names = tuple(counts)
    for label, name in enumerate(names):
        generator = make_generator(name, size=size)
        generator.background_rate = background_rate
        for _ in range(int(counts[name])):
            if name != "None" and rng.random() < mixed_fraction:
                partner_name = str(rng.choice([c for c in CLASS_NAMES if c not in (name, "None")]))
                partner = make_generator(partner_name, size=size)
                mixed = MixedPattern(size=size, components=(generator, partner))
                mixed.background_rate = background_rate
                grids.append(mixed.sample(rng))
            else:
                grids.append(generator.sample(rng))
            labels.append(label)
    return WaferDataset(np.stack(grids), np.array(labels), names)


@dataclass
class ConceptShiftResult:
    """Coverage/accuracy on in-distribution vs shifted test sets."""

    target_coverage: float
    in_distribution_coverage: float
    in_distribution_accuracy: float
    shifted_coverage: float
    shifted_accuracy: float

    @property
    def coverage_drop(self) -> float:
        """Absolute drop in realized coverage caused by the shift."""
        return self.in_distribution_coverage - self.shifted_coverage

    def shift_flagged(self, collapse_ratio: float = 0.6) -> bool:
        """Whether coverage collapsed below ``collapse_ratio * in-dist``."""
        if self.in_distribution_coverage == 0:
            return False
        return self.shifted_coverage < collapse_ratio * self.in_distribution_coverage

    def format_report(self) -> str:
        rows = [
            (
                "in-distribution",
                format_percent(self.in_distribution_coverage),
                format_percent(self.in_distribution_accuracy),
            ),
            (
                "shifted",
                format_percent(self.shifted_coverage),
                format_percent(self.shifted_accuracy),
            ),
        ]
        return format_table(
            ["test set", "realized coverage", "selective accuracy"],
            rows,
            title=f"Concept shift detection (target coverage {self.target_coverage})",
        )


def run_concept_shift(
    config: Optional[ExperimentConfig] = None,
    data: Optional[ExperimentData] = None,
    target_coverage: float = 0.5,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> ConceptShiftResult:
    """Train once, evaluate coverage on clean vs shifted test data."""
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()

    train = data.train
    if use_augmentation:
        train = augment_dataset(train, config.augmentation())

    if verbose:
        print("training SelectiveNet ...")
    classifier = SelectiveWaferClassifier(
        target_coverage=target_coverage,
        backbone=config.backbone(),
        train=config.train_config(target_coverage),
    )
    classifier.fit(train, validation=data.validation, calibrate=True)

    clean_prediction = classifier.predict_dataset(data.test)
    clean_eval = evaluate_selective(clean_prediction, data.test.labels, data.test.class_names)

    shifted = make_shifted_dataset(
        data.test.class_counts(), size=config.map_size, seed=config.seed + 999
    )
    shifted_prediction = classifier.predict_dataset(shifted)
    shifted_eval = evaluate_selective(shifted_prediction, shifted.labels, shifted.class_names)

    return ConceptShiftResult(
        target_coverage=target_coverage,
        in_distribution_coverage=clean_eval.overall_coverage,
        in_distribution_accuracy=clean_eval.overall_accuracy,
        shifted_coverage=shifted_eval.overall_coverage,
        shifted_accuracy=shifted_eval.overall_accuracy,
    )
