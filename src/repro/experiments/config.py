"""Shared experiment configuration and scale presets.

The paper's full workload (43,484 training maps at 256x256, 100 epochs)
is far beyond a pure-numpy substrate, so every experiment accepts a
preset controlling dataset scale, map size, backbone width and training
budget:

* ``smoke``   — seconds; used by the test suite and CI.
* ``default`` — a few minutes per experiment; the benchmark preset.
* ``large``   — tens of minutes; closer class balance to the paper.
* ``paper``   — the paper's exact counts/size/epochs (documented, not
  run routinely; expect days of CPU time).

All presets keep the paper's class-imbalance *ratios* so the phenomena
under study (imbalance, selective risk, abstention on unseen classes)
are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.augmentation import AugmentationConfig
from ..core.cnn import BackboneConfig
from ..core.trainer import TrainConfig
from ..data.dataset import WaferDataset, stratified_split
from ..data.generator import PAPER_TRAIN_COUNTS, generate_dataset, scaled_counts

__all__ = ["ExperimentConfig", "PRESETS", "get_preset", "ExperimentData"]


@dataclass
class ExperimentData:
    """The train/validation/test triple every experiment runs on."""

    train: WaferDataset
    validation: WaferDataset
    test: WaferDataset


@dataclass
class ExperimentConfig:
    """Everything needed to set up one experiment run."""

    name: str = "default"
    map_size: int = 32
    dataset_scale: float = 0.02
    epochs: int = 25
    batch_size: int = 64
    learning_rate: float = 1e-3
    lam: float = 0.5
    alpha: float = 0.5
    conv_channels: Tuple[int, ...] = (16, 16, 16)
    conv_kernels: Tuple[int, ...] = (5, 3, 3)
    fc_units: int = 64
    augment_target: int = 200
    augment_sigma: float = 0.1
    augment_weight: float = 0.5
    ae_epochs: int = 20
    svm_c: float = 10.0
    svm_max_iterations: int = 60
    seed: int = 0

    # ------------------------------------------------------------------
    def backbone(self) -> BackboneConfig:
        """Backbone matching this preset's scale."""
        return BackboneConfig(
            input_size=self.map_size,
            conv_channels=self.conv_channels,
            conv_kernels=self.conv_kernels,
            fc_units=self.fc_units,
            seed=self.seed,
        )

    def train_config(self, target_coverage: float = 1.0, **overrides) -> TrainConfig:
        """Training budget with the paper's lambda/alpha defaults."""
        params = dict(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            target_coverage=target_coverage,
            lam=self.lam,
            alpha=self.alpha,
            seed=self.seed,
        )
        params.update(overrides)
        return TrainConfig(**params)

    def augmentation(self) -> AugmentationConfig:
        """Algorithm 1 parameters scaled to this preset."""
        return AugmentationConfig(
            target_count=self.augment_target,
            latent_sigma=self.augment_sigma,
            synthetic_weight=self.augment_weight,
            ae_epochs=self.ae_epochs,
            seed=self.seed,
        )

    def class_counts(self) -> Dict[str, int]:
        """The paper's Table II training counts scaled by ``dataset_scale``."""
        return scaled_counts(PAPER_TRAIN_COUNTS, self.dataset_scale, minimum=5)

    def make_data(self, seed_offset: int = 0) -> ExperimentData:
        """Generate the dataset and produce the 0.7/0.1/0.2 split.

        Mirrors the paper's protocol of splitting the coherent "Train"
        set (Sec. IV-A); the validation slice calibrates the selection
        threshold.
        """
        dataset = generate_dataset(
            self.class_counts(), size=self.map_size, seed=self.seed + seed_offset
        )
        rng = np.random.default_rng(self.seed + seed_offset + 1)
        train, validation, test = stratified_split(dataset, [0.7, 0.1, 0.2], rng)
        return ExperimentData(train=train, validation=validation, test=test)


PRESETS: Dict[str, ExperimentConfig] = {
    "smoke": ExperimentConfig(
        name="smoke",
        map_size=32,
        dataset_scale=0.004,
        epochs=5,
        batch_size=32,
        conv_channels=(8, 8, 8),
        fc_units=32,
        augment_target=30,
        ae_epochs=5,
        svm_max_iterations=20,
    ),
    "bench": ExperimentConfig(
        name="bench",
        map_size=32,
        dataset_scale=0.008,
        epochs=12,
        batch_size=32,
        conv_channels=(16, 16, 16),
        fc_units=64,
        augment_target=60,
        ae_epochs=10,
        svm_max_iterations=40,
    ),
    "default": ExperimentConfig(
        name="default",
        epochs=45,
        conv_channels=(32, 16, 16),
        fc_units=128,
        augment_target=120,
        augment_weight=0.25,
        ae_epochs=40,
    ),
    "large": ExperimentConfig(
        name="large",
        map_size=32,
        dataset_scale=0.06,
        epochs=30,
        conv_channels=(32, 16, 16),
        fc_units=128,
        augment_target=500,
        ae_epochs=30,
    ),
    "paper": ExperimentConfig(
        name="paper",
        map_size=256,
        dataset_scale=1.0,
        epochs=100,
        batch_size=64,
        conv_channels=(64, 32, 32),
        conv_kernels=(5, 3, 3),
        fc_units=256,
        augment_target=8000,
        ae_epochs=100,
        svm_max_iterations=500,
    ),
}


def get_preset(name: str, **overrides) -> ExperimentConfig:
    """Fetch a preset by name, optionally overriding fields.

    >>> cfg = get_preset("smoke", seed=7)
    >>> cfg.seed
    7
    """
    try:
        preset = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {name!r}; expected one of: {known}") from None
    return replace(preset, **overrides) if overrides else preset
