"""Experiment: Table IV — new-defect-class detection by abstention.

The paper's leave-one-class-out study: remove ``Near-Full`` from
training, train a selective model at ``c0 = 0.5``, and test on all
classes including the unseen one.  The "original" recall of the unseen
class (ignoring the reject option) is necessarily 0 — the model can
only emit the 8 known labels — but with selective learning the model
should abstain on (nearly) all unseen-class samples, flagging the new
defect type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.augmentation import augment_dataset
from ..core.pipeline import SelectiveWaferClassifier
from ..core.selective import ABSTAIN
from ..metrics.reporting import format_table
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["Table4Row", "Table4Result", "run_table4"]


@dataclass
class Table4Row:
    """One class row: original vs selective recall plus coverage."""

    original_recall: float
    selective_recall: Optional[float]
    covered: int
    support: int

    @property
    def coverage_fraction(self) -> float:
        return self.covered / self.support if self.support else 0.0


@dataclass
class Table4Result:
    """Results of the leave-one-class-out experiment."""

    rows: Dict[str, Table4Row]
    held_out: str
    target_coverage: float

    def format_report(self) -> str:
        table_rows = []
        for name, row in self.rows.items():
            selective = "-" if row.selective_recall is None else f"{row.selective_recall:.2f}"
            marker = " (held out)" if name == self.held_out else ""
            table_rows.append(
                (
                    name + marker,
                    f"{row.original_recall:.2f}",
                    selective,
                    f"{row.covered} ({100 * row.coverage_fraction:.1f}%)",
                )
            )
        return format_table(
            ["Class", "Original Recall", "Selective Recall", "Coverage"],
            table_rows,
            title=f"Leave-{self.held_out}-out, c0={self.target_coverage}",
        )

    @property
    def held_out_coverage(self) -> float:
        """Fraction of unseen-class samples the model labeled (want ~0)."""
        return self.rows[self.held_out].coverage_fraction


def run_table4(
    config: Optional[ExperimentConfig] = None,
    data: Optional[ExperimentData] = None,
    held_out: str = "Near-Full",
    target_coverage: float = 0.5,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> Table4Result:
    """Run the Table IV experiment.

    The held-out class is removed from train/validation; the test set
    keeps every class.  Per paper protocol the unseen class's samples
    are all placed in testing.
    """
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()
    if held_out not in data.train.class_names:
        raise ValueError(f"{held_out!r} is not a dataset class")

    kept = tuple(name for name in data.train.class_names if name != held_out)
    train = data.train.filter_classes(kept, relabel=True)
    validation = data.validation.filter_classes(kept, relabel=True)
    # Test keeps all classes; move the held-out train samples into test
    # per the paper ("all its samples were used during testing").
    held_out_extra = data.train.subset(
        np.flatnonzero(data.train.labels == data.train.class_names.index(held_out))
    )
    test = data.test.merge(held_out_extra)

    if use_augmentation:
        train = augment_dataset(train, config.augmentation())

    if verbose:
        print(f"training SelectiveNet without {held_out} ...")
    classifier = SelectiveWaferClassifier(
        target_coverage=target_coverage,
        backbone=config.backbone(),
        train=config.train_config(target_coverage),
    )
    classifier.fit(train, validation=validation, calibrate=True)
    prediction = classifier.predict_dataset(test)

    # Map the reduced 8-class label space back to full class names.
    kept_names = list(kept)
    rows: Dict[str, Table4Row] = {}
    for name in data.test.class_names:
        true_index = data.test.class_names.index(name)
        members = test.labels == true_index
        support = int(members.sum())
        if support == 0:
            rows[name] = Table4Row(0.0, None, 0, 0)
            continue
        if name == held_out:
            # Unseen class: no correct label exists among the 8 outputs.
            original_recall = 0.0
            correct_label = None
        else:
            correct_label = kept_names.index(name)
            original_recall = float(
                (prediction.raw_labels[members] == correct_label).mean()
            )
        accepted = members & prediction.accepted
        covered = int(accepted.sum())
        if covered == 0:
            selective_recall = None
        elif correct_label is None:
            selective_recall = 0.0
        else:
            selective_recall = float(
                (prediction.labels[accepted] == correct_label).mean()
            )
        rows[name] = Table4Row(original_recall, selective_recall, covered, support)

    return Table4Result(rows=rows, held_out=held_out, target_coverage=target_coverage)
