"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments.runner --experiment table2 --preset default
    python -m repro.experiments.runner --experiment all --preset smoke
    python -m repro.experiments.runner --experiment table2 --log-dir runs/

Each run prints the reproduced table/figure in plain text.  With
``--log-dir`` every experiment additionally appends a structured JSONL
run log (config, report text, wall-clock) under
``<log-dir>/<experiment>/`` via :class:`repro.obs.RunLogger`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional

from ..obs.events import RunLogger

from .concept_shift import run_concept_shift
from .config import PRESETS, get_preset
from .data_discrepancy import run_data_discrepancy
from .fig1 import run_fig1
from .novel_defects import run_novel_defects
from .fig4 import run_fig4
from .fig5 import run_fig5
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4

__all__ = ["main", "EXPERIMENTS"]


def _run_fig1_adapter(config, verbose: bool):
    return run_fig1(size=config.map_size, seed=config.seed)


EXPERIMENTS: Dict[str, Callable] = {
    "fig1": _run_fig1_adapter,
    "table2": lambda config, verbose: run_table2(config, verbose=verbose),
    "table3": lambda config, verbose: run_table3(config, verbose=verbose),
    "table4": lambda config, verbose: run_table4(config, verbose=verbose),
    "fig4": lambda config, verbose: run_fig4(config, verbose=verbose),
    "fig5": lambda config, verbose: run_fig5(config, verbose=verbose),
    "concept_shift": lambda config, verbose: run_concept_shift(config, verbose=verbose),
    "data_discrepancy": lambda config, verbose: run_data_discrepancy(config, verbose=verbose),
    "novel_defects": lambda config, verbose: run_novel_defects(config, verbose=verbose),
}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        default="all",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=sorted(PRESETS),
        help="scale preset (see repro.experiments.config)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the preset seed")
    parser.add_argument(
        "--log-dir",
        default=None,
        help="write a structured JSONL run log per experiment under this directory",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    overrides = {} if args.seed is None else {"seed": args.seed}
    config = get_preset(args.preset, **overrides)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} (preset={args.preset}) ===")
        run_logger = None
        if args.log_dir is not None:
            run_logger = RunLogger(os.path.join(args.log_dir, name))
            run_logger.log_config({"experiment": name, "preset": args.preset, **config.__dict__})
        started = time.perf_counter()
        try:
            result = EXPERIMENTS[name](config, args.verbose)
        except Exception as exc:
            if run_logger is not None:
                run_logger.log("error", error=repr(exc))
                run_logger.close(ok=False)
            raise
        elapsed = time.perf_counter() - started
        report = result.format_report()
        print(report)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        if run_logger is not None:
            run_logger.log("result", result=result, report=report, wall_seconds=elapsed)
            run_logger.close(ok=True)
            print(f"[run log: {run_logger.path}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
