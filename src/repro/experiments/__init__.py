"""Reproductions of every table and figure in the paper's evaluation.

One module per artifact:

* :mod:`repro.experiments.fig1` — sample wafer per class (Fig. 1);
* :mod:`repro.experiments.table2` — selective learning sweep (Table II);
* :mod:`repro.experiments.table3` — CNN vs SVM confusion matrices (Table III);
* :mod:`repro.experiments.table4` — leave-one-class-out detection (Table IV);
* :mod:`repro.experiments.fig4` — augmentation sample pairs (Fig. 4);
* :mod:`repro.experiments.fig5` — risk-coverage trade-off curve (Fig. 5);
* :mod:`repro.experiments.concept_shift` — coverage collapse under
  distribution shift (Sec. IV-A / IV-D).

Run them all with ``python -m repro.experiments.runner``.
"""

from .concept_shift import ConceptShiftResult, make_shifted_dataset, run_concept_shift
from .config import PRESETS, ExperimentConfig, ExperimentData, get_preset
from .data_discrepancy import DataDiscrepancyResult, run_data_discrepancy
from .fig1 import Fig1Result, run_fig1
from .novel_defects import NovelDefectResult, make_novel_dataset, run_novel_defects
from .fig4 import Fig4Result, run_fig4
from .fig5 import PAPER_C0_GRID, Fig5Point, Fig5Result, run_fig5
from .table2 import PAPER_COVERAGES, Table2Result, run_table2
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, Table4Row, run_table4

__all__ = [
    "ExperimentConfig",
    "ExperimentData",
    "PRESETS",
    "get_preset",
    "Fig1Result",
    "run_fig1",
    "Table2Result",
    "run_table2",
    "PAPER_COVERAGES",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "Table4Row",
    "run_table4",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "Fig5Point",
    "run_fig5",
    "PAPER_C0_GRID",
    "ConceptShiftResult",
    "run_concept_shift",
    "make_shifted_dataset",
    "DataDiscrepancyResult",
    "run_data_discrepancy",
    "NovelDefectResult",
    "run_novel_defects",
    "make_novel_dataset",
]
