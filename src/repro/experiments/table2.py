"""Experiment: Table II — selective learning under different coverage.

Trains the full pipeline (auto-encoder augmentation + SelectiveNet) at
each target coverage ``c0`` in {0.2, 0.5, 0.75} and reports, per class:
precision, recall, F1 and coverage (number of test samples the model
chose to label), plus the overall selective accuracy and total realized
coverage — the exact columns of the paper's Table II.

Reproduction note: the paper reports realized coverage via the raw
``g(x) >= 0.5`` acceptance rule; on our smaller substrate the selection
threshold (on the selection logit) is calibrated on the validation
split to the target coverage (:mod:`repro.core.calibration`), which the
original SelectiveNet paper also does.  The headline phenomenon —
accuracy falling as coverage demand rises, with the model concentrating
coverage on easy classes — is threshold-protocol independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.augmentation import augment_dataset
from ..core.pipeline import SelectiveWaferClassifier
from ..metrics.reporting import format_percent, format_table
from ..metrics.selective import SelectiveEvaluation, evaluate_selective
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["Table2Result", "run_table2", "PAPER_COVERAGES"]

#: The c0 values the paper's Table II sweeps.
PAPER_COVERAGES = (0.2, 0.5, 0.75)


@dataclass
class Table2Result:
    """Results of the Table II reproduction."""

    per_coverage: Dict[float, SelectiveEvaluation]
    class_names: Tuple[str, ...]
    train_counts: Dict[str, int]
    augmented_counts: Dict[str, int]
    test_counts: Dict[str, int]

    def format_report(self) -> str:
        """Render the paper's Table II layout as text."""
        sections = [
            format_table(
                ["Class", "Training", "Testing", "Train_aug"],
                [
                    (
                        name,
                        self.train_counts.get(name, 0),
                        self.test_counts.get(name, 0),
                        self.augmented_counts.get(name, 0),
                    )
                    for name in self.class_names
                ],
                title="Dataset",
            )
        ]
        for coverage, evaluation in sorted(self.per_coverage.items()):
            rows = [
                (name, report.precision, report.recall, report.f1, report.covered)
                for name, report in evaluation.class_reports.items()
            ]
            table = format_table(
                ["Class", "Prec", "Rec", "f1", "Cov"],
                rows,
                title=(
                    f"c0={coverage}: accuracy={format_percent(evaluation.overall_accuracy)} "
                    f"coverage={evaluation.covered_count} "
                    f"({format_percent(evaluation.overall_coverage)})"
                ),
            )
            sections.append(table)
        return "\n\n".join(sections)


def run_table2(
    config: Optional[ExperimentConfig] = None,
    coverages: Sequence[float] = PAPER_COVERAGES,
    data: Optional[ExperimentData] = None,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> Table2Result:
    """Run the Table II experiment at each target coverage.

    Parameters
    ----------
    config:
        Scale preset (``default`` when omitted).
    coverages:
        The ``c0`` values to sweep.
    data:
        Pre-generated data (so multiple experiments can share it).
    use_augmentation:
        Disable to measure the augmentation ablation.
    """
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()

    train = data.train
    augmented_counts = dict(train.class_counts())
    if use_augmentation:
        train = augment_dataset(train, config.augmentation())
        augmented_counts = train.class_counts()

    results: Dict[float, SelectiveEvaluation] = {}
    for coverage in coverages:
        if verbose:
            print(f"training SelectiveNet at c0={coverage} ...")
        classifier = SelectiveWaferClassifier(
            target_coverage=coverage,
            backbone=config.backbone(),
            train=config.train_config(coverage),
        )
        # Augmentation already applied dataset-wide; avoid re-running it
        # inside fit by passing augmentation=None.
        classifier.fit(train, validation=data.validation, calibrate=True)
        prediction = classifier.predict_dataset(data.test)
        results[coverage] = evaluate_selective(prediction, data.test.labels, data.test.class_names)

    return Table2Result(
        per_coverage=results,
        class_names=data.test.class_names,
        train_counts=data.train.class_counts(),
        augmented_counts=augmented_counts,
        test_counts=data.test.class_counts(),
    )
