"""Experiment: Sec. IV-A — the train/test data-discrepancy study.

The paper investigates why the WM-811K "Test" partition behaves unlike
the "Train" partition: splitting "Train" 0.7/0.1/0.2 gives ~97/94/94%
accuracy across the splits, yet the model "performs poorly" on the
original "Test" set; under a 50%-coverage selective model, the three
"Train" splits realize 45-57% coverage at 99% accuracy while the
"Test" set realizes only ~5% coverage.  The conclusion: the partitions
are drawn from different distributions, and selective coverage detects
it.

This module reproduces the study's *protocol*: a coherent dataset is
split 0.7/0.1/0.2, a model is trained on the 70% and evaluated on all
three splits plus an *incoherent* partition (a distribution-shifted
set standing in for WM-811K's "Test"), reporting full-coverage
accuracy and selective coverage for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.augmentation import augment_dataset
from ..core.pipeline import SelectiveWaferClassifier
from ..data.dataset import WaferDataset
from ..metrics.classification import accuracy
from ..metrics.reporting import format_percent, format_table
from ..metrics.selective import evaluate_selective
from .concept_shift import make_shifted_dataset
from .config import ExperimentConfig, get_preset

__all__ = ["SplitReport", "DataDiscrepancyResult", "run_data_discrepancy"]


@dataclass
class SplitReport:
    """Accuracy and selective coverage for one evaluation split."""

    name: str
    full_accuracy: float
    selective_accuracy: float
    realized_coverage: float
    samples: int


@dataclass
class DataDiscrepancyResult:
    """The Sec. IV-A study output."""

    reports: List[SplitReport]
    target_coverage: float

    def report_by_name(self, name: str) -> SplitReport:
        for report in self.reports:
            if report.name == name:
                return report
        raise KeyError(name)

    def format_report(self) -> str:
        rows = [
            (
                r.name,
                r.samples,
                format_percent(r.full_accuracy),
                format_percent(r.selective_accuracy),
                format_percent(r.realized_coverage),
            )
            for r in self.reports
        ]
        return format_table(
            ["split", "N", "full acc", "selective acc", "coverage"],
            rows,
            title=(
                "Sec. IV-A data-discrepancy study "
                f"(target coverage {self.target_coverage})"
            ),
        )


def run_data_discrepancy(
    config: Optional[ExperimentConfig] = None,
    target_coverage: float = 0.5,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> DataDiscrepancyResult:
    """Reproduce the paper's coherent-vs-incoherent split study.

    Returns reports for: the training split itself, the validation
    split, the coherent test split, and an "incoherent test" standing
    in for WM-811K's original "Test" partition.
    """
    config = config if config is not None else get_preset("default")
    data = config.make_data()
    incoherent = make_shifted_dataset(
        data.test.class_counts(), size=config.map_size, seed=config.seed + 4242
    )

    train = data.train
    if use_augmentation:
        train = augment_dataset(train, config.augmentation())

    if verbose:
        print("training SelectiveNet for the discrepancy study ...")
    classifier = SelectiveWaferClassifier(
        target_coverage=target_coverage,
        backbone=config.backbone(),
        train=config.train_config(target_coverage),
    )
    classifier.fit(train, validation=data.validation, calibrate=True)

    reports = []
    splits = [
        ("train (70%)", data.train),
        ("validation (10%)", data.validation),
        ("test (20%)", data.test),
        ("incoherent test", incoherent),
    ]
    for name, split in splits:
        prediction = classifier.predict_dataset(split)
        evaluation = evaluate_selective(prediction, split.labels, split.class_names)
        reports.append(
            SplitReport(
                name=name,
                full_accuracy=evaluation.full_coverage_accuracy,
                selective_accuracy=evaluation.overall_accuracy,
                realized_coverage=evaluation.overall_coverage,
                samples=len(split),
            )
        )
    return DataDiscrepancyResult(reports=reports, target_coverage=target_coverage)
