"""Extension experiment: abstention on genuinely novel defect types.

Goes beyond the paper's Table IV (which holds out a *known* class): the
model trains on all nine WM-811K classes and is then shown defect
morphologies outside the label set entirely — reticle grids, half-moon
coating failures, checkerboards (:mod:`repro.data.patterns.novel`).
A useful selective model should abstain on these at a far higher rate
than on in-distribution wafers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.augmentation import augment_dataset
from ..core.pipeline import SelectiveWaferClassifier
from ..data.dataset import WaferDataset
from ..data.patterns import NOVEL_PATTERN_CLASSES, make_novel_generator
from ..metrics.reporting import format_percent, format_table
from .config import ExperimentConfig, ExperimentData, get_preset

__all__ = ["NovelDefectResult", "run_novel_defects", "make_novel_dataset"]


def make_novel_dataset(count_per_pattern: int, size: int, seed: int) -> WaferDataset:
    """Synthesize wafers for every novel pattern.

    Labels index into the novel vocabulary (these labels are only used
    for bookkeeping — the classifier has no corresponding outputs).
    """
    rng = np.random.default_rng(seed)
    names = tuple(NOVEL_PATTERN_CLASSES)
    grids: List[np.ndarray] = []
    labels: List[int] = []
    for label, name in enumerate(names):
        generator = make_novel_generator(name, size=size)
        for _ in range(count_per_pattern):
            grids.append(generator.sample(rng))
            labels.append(label)
    return WaferDataset(np.stack(grids), np.asarray(labels), names)


@dataclass
class NovelDefectResult:
    """Coverage on known vs novel wafers."""

    known_coverage: float
    known_selective_accuracy: float
    per_pattern_coverage: Dict[str, float]
    target_coverage: float

    @property
    def novel_coverage(self) -> float:
        """Mean coverage over the novel patterns (want: near zero)."""
        if not self.per_pattern_coverage:
            return 0.0
        return float(np.mean(list(self.per_pattern_coverage.values())))

    def format_report(self) -> str:
        rows = [
            (
                "known test set",
                format_percent(self.known_coverage),
                format_percent(self.known_selective_accuracy),
            )
        ]
        for name, coverage in self.per_pattern_coverage.items():
            rows.append((f"novel: {name}", format_percent(coverage), "-"))
        return format_table(
            ["wafer population", "coverage", "selective acc"],
            rows,
            title=(
                f"Novel-defect abstention (target coverage {self.target_coverage})"
            ),
        )


def run_novel_defects(
    config: Optional[ExperimentConfig] = None,
    data: Optional[ExperimentData] = None,
    target_coverage: float = 0.5,
    novel_per_pattern: int = 30,
    use_augmentation: bool = True,
    verbose: bool = False,
) -> NovelDefectResult:
    """Train on the nine classes; measure abstention on novel wafers."""
    config = config if config is not None else get_preset("default")
    if data is None:
        data = config.make_data()

    train = data.train
    if use_augmentation:
        train = augment_dataset(train, config.augmentation())

    if verbose:
        print("training SelectiveNet on the canonical nine classes ...")
    classifier = SelectiveWaferClassifier(
        target_coverage=target_coverage,
        backbone=config.backbone(),
        train=config.train_config(target_coverage),
    )
    classifier.fit(train, validation=data.validation, calibrate=True)

    known_prediction = classifier.predict_dataset(data.test)
    known_mask = known_prediction.accepted
    if known_mask.any():
        known_accuracy = float(
            (known_prediction.labels[known_mask] == data.test.labels[known_mask]).mean()
        )
    else:
        known_accuracy = 0.0

    novel = make_novel_dataset(novel_per_pattern, size=config.map_size, seed=config.seed + 777)
    novel_prediction = classifier.predict(novel.tensors())
    per_pattern: Dict[str, float] = {}
    for label, name in enumerate(novel.class_names):
        members = novel.labels == label
        per_pattern[name] = float(
            (novel_prediction.accepted & members).sum() / max(members.sum(), 1)
        )

    return NovelDefectResult(
        known_coverage=known_prediction.coverage,
        known_selective_accuracy=known_accuracy,
        per_pattern_coverage=per_pattern,
        target_coverage=target_coverage,
    )
