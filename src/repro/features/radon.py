"""Radon-transform features (Wu et al., TSM'15 — the paper's baseline).

The baseline [2] projects the binary failure map along a set of angles
(the Radon transform) and summarizes each projection's row mean and row
standard deviation, interpolated to a fixed length with cubic splines —
yielding a rotation-aware but resolution-independent descriptor.

No skimage is available offline, so the Radon transform is implemented
directly: rotate the failure image with ``scipy.ndimage`` and sum along
columns for each projection angle.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import interpolate, ndimage

from ..data.wafer import FAIL

__all__ = ["radon_transform", "radon_features", "DEFAULT_ANGLES"]

#: Projection angles in degrees, matching the common WM-811K recipe.
DEFAULT_ANGLES = tuple(float(a) for a in np.arange(0, 180, 10))


def radon_transform(
    image: np.ndarray,
    angles: Sequence[float] = DEFAULT_ANGLES,
) -> np.ndarray:
    """Discrete Radon transform of a 2-D float image.

    Returns a sinogram of shape ``(H, len(angles))``: column ``j`` is
    the projection of the image rotated by ``angles[j]`` degrees,
    summed along axis 0.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("radon_transform expects a 2-D image")
    columns = []
    for angle in angles:
        rotated = ndimage.rotate(image, angle, reshape=False, order=1, mode="constant", cval=0.0)
        columns.append(rotated.sum(axis=0))
    return np.stack(columns, axis=1)


def _interpolate_to_length(values: np.ndarray, length: int) -> np.ndarray:
    """Cubic-spline resample of a 1-D signal to a fixed length."""
    if values.size == length:
        return values.astype(np.float64)
    x = np.linspace(0.0, 1.0, values.size)
    new_x = np.linspace(0.0, 1.0, length)
    if values.size < 4:
        return np.interp(new_x, x, values)
    spline = interpolate.CubicSpline(x, values)
    return spline(new_x)


def radon_features(
    grid: np.ndarray,
    angles: Sequence[float] = DEFAULT_ANGLES,
    resample_length: int = 20,
) -> np.ndarray:
    """The baseline's Radon feature vector for one wafer die grid.

    For each angle the projection row-mean and row-std over angles are
    computed per radial position, then each of the two curves is
    cubic-interpolated to ``resample_length`` points, giving a
    ``2 * resample_length`` feature vector (40 dims at the default).
    """
    failure = (np.asarray(grid) == FAIL).astype(np.float64)
    sinogram = radon_transform(failure, angles)
    row_mean = sinogram.mean(axis=1)
    row_std = sinogram.std(axis=1)
    features = np.concatenate(
        [
            _interpolate_to_length(row_mean, resample_length),
            _interpolate_to_length(row_std, resample_length),
        ]
    )
    return features.astype(np.float64)
