"""Combined feature extraction pipeline for the SVM baseline."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.dataset import WaferDataset
from ..data.wafer import FAIL
from .density import density_features
from .geometry import geometry_features
from .radon import DEFAULT_ANGLES, radon_features

__all__ = ["extract_features", "extract_dataset_features", "FEATURE_DIM"]

#: Dimensionality of the default combined feature vector:
#: 40 Radon + 13 density + 8 geometry + 1 global failure rate.
FEATURE_DIM = 62


def extract_features(
    grid: np.ndarray,
    angles: Sequence[float] = DEFAULT_ANGLES,
    radon_length: int = 20,
) -> np.ndarray:
    """Full baseline descriptor for one wafer die grid.

    Concatenates Radon row statistics, zonal/ring densities, geometry
    of the dominant failure region, and the global failure rate.
    """
    grid = np.asarray(grid)
    on_wafer = grid != 0
    total = int(on_wafer.sum())
    global_rate = float((grid[on_wafer] == FAIL).sum()) / total if total else 0.0
    return np.concatenate(
        [
            radon_features(grid, angles=angles, resample_length=radon_length),
            density_features(grid),
            geometry_features(grid),
            [global_rate],
        ]
    )


def extract_dataset_features(
    dataset: WaferDataset,
    angles: Sequence[float] = DEFAULT_ANGLES,
    radon_length: int = 20,
) -> np.ndarray:
    """Feature matrix ``(N, FEATURE_DIM)`` for a whole dataset."""
    if len(dataset) == 0:
        return np.empty((0, 2 * radon_length + 13 + 8 + 1))
    return np.stack(
        [extract_features(grid, angles=angles, radon_length=radon_length) for grid in dataset.grids]
    )
