"""Geometry features of the most salient defect region (Wu et al.).

The baseline extracts shape statistics of the largest connected
component of failed dies: area, perimeter, axis lengths and
eccentricity of the best-fit ellipse (via second moments), solidity
(approximated against the bounding box), and centroid position
relative to the wafer center.  Connected-component labeling uses
``scipy.ndimage.label``; moments are computed from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..data.wafer import FAIL

__all__ = ["RegionProperties", "largest_failure_region", "geometry_features"]


@dataclass
class RegionProperties:
    """Shape statistics of one connected failure region."""

    area: float
    perimeter: float
    major_axis: float
    minor_axis: float
    eccentricity: float
    extent: float
    centroid_radius: float
    centroid_angle: float


def largest_failure_region(grid: np.ndarray) -> np.ndarray:
    """Boolean mask of the largest 8-connected component of failures.

    Returns an all-False mask if the wafer has no failures.
    """
    failure = np.asarray(grid) == FAIL
    if not failure.any():
        return np.zeros_like(failure, dtype=bool)
    structure = np.ones((3, 3), dtype=int)  # 8-connectivity
    labeled, count = ndimage.label(failure, structure=structure)
    sizes = ndimage.sum_labels(failure, labeled, index=np.arange(1, count + 1))
    largest = int(np.argmax(sizes)) + 1
    return labeled == largest


def _perimeter(mask: np.ndarray) -> float:
    """Count of exposed pixel edges of the mask (4-neighbourhood)."""
    padded = np.pad(mask, 1)
    edges = 0
    edges += int((padded[1:, :] != padded[:-1, :]).sum())
    edges += int((padded[:, 1:] != padded[:, :-1]).sum())
    return float(edges)


def region_properties(mask: np.ndarray) -> RegionProperties:
    """Compute shape statistics for a boolean region mask.

    An empty mask yields all-zero properties.
    """
    mask = np.asarray(mask, dtype=bool)
    area = float(mask.sum())
    if area == 0:
        return RegionProperties(0, 0, 0, 0, 0, 0, 0, 0)

    ys, xs = np.nonzero(mask)
    centroid_y = ys.mean()
    centroid_x = xs.mean()

    # Central second moments -> best-fit ellipse axes.
    mu_yy = ((ys - centroid_y) ** 2).mean() + 1.0 / 12.0
    mu_xx = ((xs - centroid_x) ** 2).mean() + 1.0 / 12.0
    mu_xy = ((ys - centroid_y) * (xs - centroid_x)).mean()
    common = np.sqrt(max((mu_yy - mu_xx) ** 2 + 4 * mu_xy ** 2, 0.0))
    lambda1 = (mu_yy + mu_xx + common) / 2.0
    lambda2 = (mu_yy + mu_xx - common) / 2.0
    lambda2 = max(lambda2, 1e-12)
    major = 4.0 * np.sqrt(lambda1)
    minor = 4.0 * np.sqrt(lambda2)
    eccentricity = np.sqrt(max(1.0 - lambda2 / lambda1, 0.0)) if lambda1 > 0 else 0.0

    bbox_area = float((ys.max() - ys.min() + 1) * (xs.max() - xs.min() + 1))
    extent = area / bbox_area if bbox_area > 0 else 0.0

    h, w = mask.shape
    center_y = (h - 1) / 2.0
    center_x = (w - 1) / 2.0
    dy = centroid_y - center_y
    dx = centroid_x - center_x
    centroid_radius = np.sqrt(dy ** 2 + dx ** 2) / (min(h, w) / 2.0)
    centroid_angle = float(np.arctan2(dy, dx))

    return RegionProperties(
        area=area,
        perimeter=_perimeter(mask),
        major_axis=float(major),
        minor_axis=float(minor),
        eccentricity=float(eccentricity),
        extent=float(extent),
        centroid_radius=float(centroid_radius),
        centroid_angle=centroid_angle,
    )


def geometry_features(grid: np.ndarray) -> np.ndarray:
    """8-dim geometry descriptor of the wafer's dominant failure region.

    Area and perimeter are normalized by wafer size so the features are
    resolution-independent; the centroid angle is encoded as
    (sin, cos) would add dims, but the baseline keeps the raw angle —
    we normalize it to [-1, 1].
    """
    grid = np.asarray(grid)
    mask = largest_failure_region(grid)
    props = region_properties(mask)
    h, w = grid.shape
    scale = float(h * w)
    side = float(min(h, w))
    return np.array(
        [
            props.area / scale,
            props.perimeter / (4.0 * side),
            props.major_axis / side,
            props.minor_axis / side,
            props.eccentricity,
            props.extent,
            props.centroid_radius,
            props.centroid_angle / np.pi,
        ],
        dtype=np.float64,
    )
