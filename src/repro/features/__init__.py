"""Hand-crafted wafer-map features for the SVM baseline (Wu et al.).

The paper compares against [2]: Radon-based features plus geometry
features in an SVM framework.  This package implements that recipe from
first principles (no skimage/sklearn offline).
"""

from .density import density_features, ring_densities, zone_densities
from .geometry import (
    RegionProperties,
    geometry_features,
    largest_failure_region,
    region_properties,
)
from .pipeline import FEATURE_DIM, extract_dataset_features, extract_features
from .radon import DEFAULT_ANGLES, radon_features, radon_transform

__all__ = [
    "radon_transform",
    "radon_features",
    "DEFAULT_ANGLES",
    "density_features",
    "zone_densities",
    "ring_densities",
    "geometry_features",
    "largest_failure_region",
    "region_properties",
    "RegionProperties",
    "extract_features",
    "extract_dataset_features",
    "FEATURE_DIM",
]
