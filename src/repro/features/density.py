"""Regional density features (Wu et al., TSM'15).

The baseline splits the wafer into 13 zones — 4 concentric radial
bands and 9 angular/positional regions in the common recipe; this
implementation uses the widely-reproduced variant: 9 rectangular zones
of the bounding square plus 4 concentric rings — and measures the
failure density of each zone.
"""

from __future__ import annotations

import numpy as np

from ..data.wafer import FAIL, OFF

__all__ = ["zone_densities", "ring_densities", "density_features"]


def zone_densities(grid: np.ndarray, zones_per_side: int = 3) -> np.ndarray:
    """Failure density in a ``zones_per_side x zones_per_side`` grid.

    Density of a zone = failed dies / on-wafer dies in the zone (0 when
    the zone holds no wafer area).
    """
    grid = np.asarray(grid)
    if grid.ndim != 2:
        raise ValueError("grid must be 2-D")
    h, w = grid.shape
    row_edges = np.linspace(0, h, zones_per_side + 1).astype(int)
    col_edges = np.linspace(0, w, zones_per_side + 1).astype(int)
    densities = np.zeros(zones_per_side * zones_per_side, dtype=np.float64)
    index = 0
    for i in range(zones_per_side):
        for j in range(zones_per_side):
            zone = grid[row_edges[i]:row_edges[i + 1], col_edges[j]:col_edges[j + 1]]
            on_wafer = zone != OFF
            total = int(on_wafer.sum())
            densities[index] = (zone[on_wafer] == FAIL).sum() / total if total else 0.0
            index += 1
    return densities


def ring_densities(grid: np.ndarray, rings: int = 4) -> np.ndarray:
    """Failure density in concentric radial bands (equal-width in r)."""
    grid = np.asarray(grid)
    h, w = grid.shape
    center_y = (h - 1) / 2.0
    center_x = (w - 1) / 2.0
    yy, xx = np.mgrid[0:h, 0:w]
    r = np.sqrt((yy - center_y) ** 2 + (xx - center_x) ** 2) / (min(h, w) / 2.0)
    edges = np.linspace(0.0, 1.0, rings + 1)
    densities = np.zeros(rings, dtype=np.float64)
    for i in range(rings):
        band = (r >= edges[i]) & (r < edges[i + 1]) & (grid != OFF)
        total = int(band.sum())
        densities[i] = (grid[band] == FAIL).sum() / total if total else 0.0
    return densities


def density_features(grid: np.ndarray) -> np.ndarray:
    """The 13-dim density descriptor: 9 zones + 4 rings."""
    return np.concatenate([zone_densities(grid, 3), ring_densities(grid, 4)])
