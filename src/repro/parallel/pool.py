"""Multiprocessing worker pool with pipe control and BLAS pinning.

The pool favours the ``fork`` start method (zero-copy inheritance of
the model and dataset) and falls back to whatever the platform offers.
Workers talk to the parent over one duplex pipe each; bulk ndarray data
never rides the pipes — it lives in a :mod:`repro.parallel.shm` arena.

Every worker pins the BLAS threadpools to one thread: with N processes
each spinning the default OpenBLAS pool the machine oversubscribes
N x cores threads and throughput collapses.  The parent's environment
is only modified while the children are being spawned (they inherit
it), then restored.

Supervision primitives (used by the resilient engine and serve
backends): :meth:`WorkerPool.recv` raises :class:`WorkerCrashed` on a
dead pipe / dead process / per-call deadline, so a crash is a typed
event rather than a hang; :meth:`WorkerPool.ping` is the heartbeat
probe; :meth:`WorkerPool.respawn` replaces a single dead or wedged
worker in place; :meth:`WorkerPool.shutdown` escalates
stop → join(grace) → terminate → kill so a wedged worker can never
block exit forever.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from typing import Any, Callable, Iterable, List, Optional, Sequence

from .shm import HAVE_SHARED_MEMORY

__all__ = [
    "BLAS_ENV_VARS",
    "blas_single_thread",
    "pin_blas_threads",
    "parallel_supported",
    "WorkerCrashed",
    "WorkerPool",
    "parallel_map",
]

#: Thread-count knobs of every BLAS/numexpr backend numpy may link.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


class WorkerCrashed(RuntimeError):
    """A worker process died or missed its deadline.

    Distinct from a plain ``RuntimeError`` carrying a worker-side
    traceback (a *logic* error, which retrying cannot fix): a crash is
    an infrastructure fault the supervision layer may recover from by
    respawning the worker and re-sharding the in-flight work.
    """

    def __init__(self, message: str, rank: int) -> None:
        super().__init__(message)
        self.rank = rank


class blas_single_thread:
    """Context manager pinning BLAS env vars to ``1``, restoring the
    previous values (including absence) on exit."""

    def __enter__(self) -> "blas_single_thread":
        self._saved = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
        for var in BLAS_ENV_VARS:
            os.environ[var] = "1"
        return self

    def __exit__(self, *exc) -> None:
        for var, value in self._saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def pin_blas_threads() -> None:
    """Pin BLAS threadpools to one thread (called inside each worker)."""
    for var in BLAS_ENV_VARS:
        os.environ[var] = "1"


def parallel_supported(num_workers: int) -> bool:
    """Whether multi-process execution is possible and worthwhile here.

    False for ``num_workers <= 1``, when the platform lacks
    ``multiprocessing.shared_memory``, or inside a daemon process
    (daemons cannot have children) — callers fall back to serial.
    """
    if num_workers <= 1:
        return False
    if not HAVE_SHARED_MEMORY:
        return False
    if mp.current_process().daemon:
        return False
    return True


def _start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class WorkerPool:
    """``num_workers`` processes running ``worker_fn(rank, num_workers,
    pipe, payload)``, each driven over its own duplex pipe.

    ``payload`` is pickled once at start-up (under ``fork`` it is
    inherited for free); per-step messages should be small tuples, with
    array traffic going through a shared-memory arena.

    Worker functions should answer a ``("ping",)`` message with
    ``("pong", rank)`` so :meth:`ping` heartbeats and respawn readiness
    probes work; the built-in worker loops all do.
    """

    def __init__(
        self,
        num_workers: int,
        worker_fn: Callable,
        payload: Any = None,
        timeout: float = 120.0,
        shutdown_grace: float = 5.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if shutdown_grace < 0:
            raise ValueError("shutdown_grace must be non-negative")
        self.num_workers = num_workers
        self._timeout = float(timeout)
        self._shutdown_grace = float(shutdown_grace)
        self._worker_fn = worker_fn
        self._payload = payload
        self._ctx = mp.get_context(_start_method())
        self._pipes: List[Any] = [None] * num_workers
        self._procs: List[Any] = [None] * num_workers
        # Children inherit the pinned environment; the parent's own env
        # is restored as soon as every worker has been started.
        with blas_single_thread():
            for rank in range(num_workers):
                self._spawn(rank)

    def _spawn(self, rank: int) -> None:
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(self._worker_fn, rank, self.num_workers, child_end, self._payload),
            daemon=True,
        )
        proc.start()
        child_end.close()
        self._pipes[rank] = parent_end
        self._procs[rank] = proc

    # ------------------------------------------------------------------
    def send(self, rank: int, message: Any) -> None:
        self._pipes[rank].send(message)

    def broadcast(self, message: Any) -> None:
        for pipe in self._pipes:
            pipe.send(message)

    def recv(self, rank: int, timeout: Optional[float] = None) -> Any:
        """Receive one message, polling so a dead worker surfaces as a
        :class:`WorkerCrashed` instead of a hang.

        The per-call deadline (``timeout``, defaulting to the pool's)
        also raises :class:`WorkerCrashed` — a wedged-but-alive worker
        is indistinguishable from a dead one to the caller, and the
        supervision layer handles both by replacing it.
        """
        deadline = time.monotonic() + (self._timeout if timeout is None else timeout)
        pipe = self._pipes[rank]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerCrashed(f"worker {rank} timed out", rank)
            try:
                ready = pipe.poll(min(remaining, 0.2))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashed(f"worker {rank} pipe broke: {exc}", rank)
            if ready:
                try:
                    message = pipe.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashed(f"worker {rank} pipe closed: {exc}", rank)
                if isinstance(message, tuple) and message and message[0] == "__error__":
                    raise RuntimeError(
                        f"worker {rank} failed:\n{message[1]}"
                    )
                return message
            if not self._procs[rank].is_alive():
                # Drain anything flushed before death, then give up.
                if pipe.poll(0):
                    continue
                raise WorkerCrashed(
                    f"worker {rank} died (exit code "
                    f"{self._procs[rank].exitcode})",
                    rank,
                )

    def gather(self, timeout: Optional[float] = None) -> List[Any]:
        """One message from every worker, in rank order."""
        return [self.recv(rank, timeout) for rank in range(self.num_workers)]

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def alive(self, rank: int) -> bool:
        proc = self._procs[rank]
        return proc is not None and proc.is_alive()

    def exitcode(self, rank: int) -> Optional[int]:
        proc = self._procs[rank]
        return None if proc is None else proc.exitcode

    def ping(self, rank: int, timeout: Optional[float] = None) -> None:
        """Heartbeat one worker; raises :class:`WorkerCrashed` on miss.

        Stale in-flight messages from an aborted step are discarded
        until the matching ``pong`` arrives.
        """
        try:
            self.send(rank, ("ping",))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {rank} pipe broke: {exc}", rank)
        deadline = time.monotonic() + (self._timeout if timeout is None else timeout)
        while True:
            message = self.recv(rank, max(0.0, deadline - time.monotonic()))
            if isinstance(message, tuple) and message and message[0] == "pong":
                return

    def kill(self, rank: int) -> None:
        """Force-stop one worker (terminate, then SIGKILL)."""
        proc = self._procs[rank]
        if proc is None or not proc.is_alive():
            return
        proc.terminate()
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - terminate ignored
            proc.kill()
            proc.join(timeout=1.0)

    def respawn(self, rank: int) -> None:
        """Replace one worker process in place (dead or wedged).

        The old process is force-stopped, its pipe closed, and a fresh
        process started with the same ``worker_fn`` / ``payload``.
        Callers should :meth:`ping` afterwards to confirm readiness.
        Every respawn is counted in ``parallel.worker.respawns`` and
        noted in the flight-recorder ring; higher layers own carrying
        forward the casualty's published metrics (the replacement's
        registries start from zero).
        """
        exitcode = self.exitcode(rank)
        self.kill(rank)
        old_pipe = self._pipes[rank]
        if old_pipe is not None:
            try:
                old_pipe.close()
            except OSError:  # pragma: no cover
                pass
        with blas_single_thread():
            self._spawn(rank)
        try:
            from ..obs.flight import record_flight_event
            from ..obs.metrics import default_registry

            default_registry().counter("parallel.worker.respawns").inc()
            record_flight_event("worker_respawn", rank=rank, exitcode=exitcode)
        except Exception:  # pragma: no cover - telemetry is best-effort
            pass

    # ------------------------------------------------------------------
    def shutdown(self, grace: Optional[float] = None) -> None:
        """Stop workers: stop message → join(grace) → terminate → kill.

        Bounded even when a worker is wedged mid-computation and never
        reads the stop message — after the grace period stragglers are
        terminated, and a worker that survives ``SIGTERM`` is killed.
        """
        grace = self._shutdown_grace if grace is None else float(grace)
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + grace
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=1.0)
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass
        self._pipes = []
        self._procs = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _worker_entry(worker_fn, rank, num_workers, pipe, payload) -> None:
    pin_blas_threads()
    try:
        worker_fn(rank, num_workers, pipe, payload)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown races
        pass
    except Exception:  # surface the traceback in the parent
        try:
            pipe.send(("__error__", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        try:
            pipe.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
def _map_worker(rank, num_workers, pipe, fn) -> None:
    while True:
        message = pipe.recv()
        if message[0] == "stop":
            return
        if message[0] == "ping":
            pipe.send(("pong", rank))
            continue
        _, index, item = message
        try:
            pipe.send(("ok", index, fn(item)))
        except Exception:
            pipe.send(("err", index, traceback.format_exc()))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    num_workers: int = 1,
    timeout: float = 600.0,
) -> List[Any]:
    """Order-preserving ``[fn(item) for item in items]`` across workers.

    Items are dispatched one-at-a-time to whichever worker is free
    (bounding pipe buffering and balancing uneven item costs).  Falls
    back to a plain serial loop when :func:`parallel_supported` says
    multiprocessing is not available, so callers can use it
    unconditionally.  ``fn`` must be picklable under spawn start
    methods — define it at module top level.
    """
    item_list = list(items)
    if not item_list:
        return []
    workers = min(num_workers, len(item_list))
    if not parallel_supported(workers):
        return [fn(item) for item in item_list]

    results: List[Any] = [None] * len(item_list)
    with WorkerPool(workers, _map_worker, payload=fn, timeout=timeout) as pool:
        cursor = 0
        busy: List[Optional[int]] = [None] * workers
        for rank in range(workers):
            pool.send(rank, ("item", cursor, item_list[cursor]))
            busy[rank] = cursor
            cursor += 1
        pending = len(item_list)
        while pending:
            for rank in range(workers):
                if busy[rank] is None:
                    continue
                status, index, value = pool.recv(rank, timeout)
                if status == "err":
                    raise RuntimeError(f"parallel_map item {index} failed:\n{value}")
                results[index] = value
                pending -= 1
                if cursor < len(item_list):
                    pool.send(rank, ("item", cursor, item_list[cursor]))
                    busy[rank] = cursor
                    cursor += 1
                else:
                    busy[rank] = None
    return results
