"""Multiprocessing worker pool with pipe control and BLAS pinning.

The pool favours the ``fork`` start method (zero-copy inheritance of
the model and dataset) and falls back to whatever the platform offers.
Workers talk to the parent over one duplex pipe each; bulk ndarray data
never rides the pipes — it lives in a :mod:`repro.parallel.shm` arena.

Every worker pins the BLAS threadpools to one thread: with N processes
each spinning the default OpenBLAS pool the machine oversubscribes
N x cores threads and throughput collapses.  The parent's environment
is only modified while the children are being spawned (they inherit
it), then restored.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from typing import Any, Callable, Iterable, List, Optional, Sequence

from .shm import HAVE_SHARED_MEMORY

__all__ = [
    "BLAS_ENV_VARS",
    "blas_single_thread",
    "pin_blas_threads",
    "parallel_supported",
    "WorkerPool",
    "parallel_map",
]

#: Thread-count knobs of every BLAS/numexpr backend numpy may link.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


class blas_single_thread:
    """Context manager pinning BLAS env vars to ``1``, restoring the
    previous values (including absence) on exit."""

    def __enter__(self) -> "blas_single_thread":
        self._saved = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
        for var in BLAS_ENV_VARS:
            os.environ[var] = "1"
        return self

    def __exit__(self, *exc) -> None:
        for var, value in self._saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def pin_blas_threads() -> None:
    """Pin BLAS threadpools to one thread (called inside each worker)."""
    for var in BLAS_ENV_VARS:
        os.environ[var] = "1"


def parallel_supported(num_workers: int) -> bool:
    """Whether multi-process execution is possible and worthwhile here.

    False for ``num_workers <= 1``, when the platform lacks
    ``multiprocessing.shared_memory``, or inside a daemon process
    (daemons cannot have children) — callers fall back to serial.
    """
    if num_workers <= 1:
        return False
    if not HAVE_SHARED_MEMORY:
        return False
    if mp.current_process().daemon:
        return False
    return True


def _start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class WorkerPool:
    """``num_workers`` processes running ``worker_fn(rank, num_workers,
    pipe, payload)``, each driven over its own duplex pipe.

    ``payload`` is pickled once at start-up (under ``fork`` it is
    inherited for free); per-step messages should be small tuples, with
    array traffic going through a shared-memory arena.
    """

    def __init__(
        self,
        num_workers: int,
        worker_fn: Callable,
        payload: Any = None,
        timeout: float = 120.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._timeout = float(timeout)
        self._pipes: List[Any] = []
        self._procs: List[Any] = []
        ctx = mp.get_context(_start_method())
        # Children inherit the pinned environment; the parent's own env
        # is restored as soon as every worker has been started.
        with blas_single_thread():
            for rank in range(num_workers):
                parent_end, child_end = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(worker_fn, rank, num_workers, child_end, payload),
                    daemon=True,
                )
                proc.start()
                child_end.close()
                self._pipes.append(parent_end)
                self._procs.append(proc)

    # ------------------------------------------------------------------
    def send(self, rank: int, message: Any) -> None:
        self._pipes[rank].send(message)

    def broadcast(self, message: Any) -> None:
        for pipe in self._pipes:
            pipe.send(message)

    def recv(self, rank: int, timeout: Optional[float] = None) -> Any:
        """Receive one message, polling so a dead worker surfaces as a
        RuntimeError instead of a hang."""
        deadline = time.monotonic() + (self._timeout if timeout is None else timeout)
        pipe = self._pipes[rank]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(f"worker {rank} timed out")
            if pipe.poll(min(remaining, 0.2)):
                message = pipe.recv()
                if isinstance(message, tuple) and message and message[0] == "__error__":
                    raise RuntimeError(
                        f"worker {rank} failed:\n{message[1]}"
                    )
                return message
            if not self._procs[rank].is_alive():
                # Drain anything flushed before death, then give up.
                if pipe.poll(0):
                    continue
                raise RuntimeError(
                    f"worker {rank} died (exit code "
                    f"{self._procs[rank].exitcode})"
                )

    def gather(self, timeout: Optional[float] = None) -> List[Any]:
        """One message from every worker, in rank order."""
        return [self.recv(rank, timeout) for rank in range(self.num_workers)]

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers, join with a deadline, terminate stragglers."""
        for rank, pipe in enumerate(self._pipes):
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass
        self._pipes = []
        self._procs = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _worker_entry(worker_fn, rank, num_workers, pipe, payload) -> None:
    pin_blas_threads()
    try:
        worker_fn(rank, num_workers, pipe, payload)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown races
        pass
    except Exception:  # surface the traceback in the parent
        try:
            pipe.send(("__error__", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        try:
            pipe.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
def _map_worker(rank, num_workers, pipe, fn) -> None:
    while True:
        message = pipe.recv()
        if message[0] == "stop":
            return
        _, index, item = message
        try:
            pipe.send(("ok", index, fn(item)))
        except Exception:
            pipe.send(("err", index, traceback.format_exc()))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    num_workers: int = 1,
    timeout: float = 600.0,
) -> List[Any]:
    """Order-preserving ``[fn(item) for item in items]`` across workers.

    Items are dispatched one-at-a-time to whichever worker is free
    (bounding pipe buffering and balancing uneven item costs).  Falls
    back to a plain serial loop when :func:`parallel_supported` says
    multiprocessing is not available, so callers can use it
    unconditionally.  ``fn`` must be picklable under spawn start
    methods — define it at module top level.
    """
    item_list = list(items)
    if not item_list:
        return []
    workers = min(num_workers, len(item_list))
    if not parallel_supported(workers):
        return [fn(item) for item in item_list]

    results: List[Any] = [None] * len(item_list)
    with WorkerPool(workers, _map_worker, payload=fn, timeout=timeout) as pool:
        cursor = 0
        busy: List[Optional[int]] = [None] * workers
        for rank in range(workers):
            pool.send(rank, ("item", cursor, item_list[cursor]))
            busy[rank] = cursor
            cursor += 1
        pending = len(item_list)
        while pending:
            for rank in range(workers):
                if busy[rank] is None:
                    continue
                status, index, value = pool.recv(rank, timeout)
                if status == "err":
                    raise RuntimeError(f"parallel_map item {index} failed:\n{value}")
                results[index] = value
                pending -= 1
                if cursor < len(item_list):
                    pool.send(rank, ("item", cursor, item_list[cursor]))
                    busy[rank] = cursor
                    cursor += 1
                else:
                    busy[rank] = None
    return results
