"""Synchronous data-parallel training engine with worker supervision.

Each step splits the mini-batch across N workers, runs forward/backward
on the shards, and sums the shard gradients into the parent model's
``param.grad`` — the parent then applies one ordinary optimizer step,
so data-parallel training reproduces the serial trajectory (same seed,
same batches, same updates) up to floating-point summation order.

Exactness.  The SelectiveNet objective (Eq. 9) is *nonlinear* in batch
statistics — coverage appears in a denominator and inside the penalty —
so naively averaging per-shard losses would compute the gradient of a
different function.  Instead every step runs a two-phase protocol:

1. Workers forward their shard and report the three batch partial sums
   the objective depends on: ``U = sum(w*l*g)``, ``V = sum(g)``,
   ``W = sum(w*l)`` (per-sample CE ``l``, selection ``g``, weights
   ``w``).
2. The parent combines them into the full-batch statistics and sends
   back three scalar coefficients ``kU, kV, kW`` — the partial
   derivatives of the objective with respect to those sums.  Each
   worker then backpropagates the *linear* surrogate
   ``kU*U_s + kV*V_s + kW*W_s`` of its own shard tensors.

By the chain rule the sum of the surrogate gradients equals the exact
gradient of the full-batch objective; plain cross-entropy is the
``kU = kV = 0, kW = 1/N`` special case.  Parameters, batches, and the
per-worker gradient slab all live in one shared-memory arena
(:mod:`repro.parallel.shm`), so no ndarray is ever pickled after
start-up; workers bind their model parameters directly onto the arena
views, making the parent's post-step weights visible for free.

Fault tolerance.  Gradients are only applied after a *complete*
attempt, so a step is idempotent and a crashed worker costs a retry,
never a corrupted update:

* A dead pipe, dead process, or missed per-call deadline surfaces as
  :class:`~repro.parallel.pool.WorkerCrashed`; the parent aborts the
  in-flight phase on the survivors (``abort``/``aborted`` handshake,
  draining stale messages) and re-shards the same mini-batch across
  whoever is left.
* Lost workers are respawned under a bounded exponential-backoff
  :class:`~repro.resilience.RetryPolicy`; a respawn only rejoins the
  active set after answering a heartbeat ping.
* When the active set degrades below two workers (data-parallel with
  one shard is pure overhead) the engine shuts down and raises
  :class:`ParallelUnavailable` — the trainer's signal to fall back to
  the serial path.

Every death, restart, and retried step increments a ``repro.obs``
counter (``resilience.worker.deaths`` / ``.restarts``,
``resilience.step.retries``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.aggregate import FleetAggregator, mergeable_snapshot
from ..obs.flight import dump_flight, record_flight_event
from ..obs.trace import current_tracer, remote_span
from ..resilience.chaos import chaos_point
from ..resilience.retry import RetryPolicy
from .pool import WorkerCrashed, WorkerPool, parallel_supported
from .shm import ArraySpec, ShmArena

__all__ = [
    "ObjectiveSpec",
    "StepStats",
    "DataParallelEngine",
    "ParallelUnavailable",
]

logger = logging.getLogger("repro.parallel")


class ParallelUnavailable(RuntimeError):
    """The worker pool degraded below two usable workers.

    Raised after the engine has already shut itself down; the caller
    should continue on the serial code path (the trainer does exactly
    that, so training survives total pool loss).
    """


class _StepFailure(Exception):
    """Internal: one step attempt lost the listed worker ranks."""

    def __init__(self, dead: Sequence[int]) -> None:
        super().__init__(f"step lost workers {sorted(set(dead))}")
        self.dead = list(dead)


@dataclass(frozen=True)
class ObjectiveSpec:
    """Which training objective the workers evaluate.

    ``kind="cross_entropy"`` is the full-coverage path; ``"selective"``
    is the Eq. 9 objective with the trainer's hyper-parameters.
    ``eps`` must match :func:`repro.core.losses.selective_risk`.
    """

    kind: str = "cross_entropy"
    target_coverage: float = 1.0
    lam: float = 0.5
    alpha: float = 0.5
    penalty_mode: str = "symmetric"
    eps: float = 1e-8

    def __post_init__(self) -> None:
        if self.kind not in ("cross_entropy", "selective"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.penalty_mode not in ("symmetric", "hinge"):
            raise ValueError(f"unknown penalty mode {self.penalty_mode!r}")


@dataclass
class StepStats:
    """Full-batch statistics of one data-parallel step, matching what
    the serial loop reads off the loss terms."""

    loss: float
    coverage: float
    selective_risk: float
    correct: int


def _shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, deterministic split of ``range(n)`` into ``workers``
    near-equal shards (first ``n % workers`` shards get the extra)."""
    base, rem = divmod(n, workers)
    bounds = []
    lo = 0
    for rank in range(workers):
        hi = lo + base + (1 if rank < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _coefficients(
    spec: ObjectiveSpec, n: int, u: float, v: float, w: float
) -> Tuple[float, float, float]:
    """Partial derivatives (kU, kV, kW) of the objective with respect
    to the batch sums, evaluated at the current statistics."""
    if spec.kind == "cross_entropy":
        return 0.0, 0.0, 1.0 / n
    coverage = v / n
    d = coverage + spec.eps
    if spec.penalty_mode == "symmetric":
        dpsi = 2.0 * (coverage - spec.target_coverage)
    else:  # hinge: psi = max(0, c0 - c)^2
        gap = spec.target_coverage - coverage
        dpsi = -2.0 * gap if gap > 0 else 0.0
    k_u = spec.alpha / (n * d)
    k_v = spec.alpha * (-u / (n * n * d * d) + spec.lam * dpsi / n)
    k_w = (1.0 - spec.alpha) / n
    return k_u, k_v, k_w


def _batch_stats(
    spec: ObjectiveSpec, n: int, u: float, v: float, w: float, correct: int
) -> StepStats:
    """Recover the loss terms the serial loop logs from the sums."""
    if spec.kind == "cross_entropy":
        loss = w / n
        return StepStats(loss=loss, coverage=1.0, selective_risk=loss, correct=correct)
    coverage = v / n
    risk = (u / n) / (coverage + spec.eps)
    if spec.penalty_mode == "symmetric":
        penalty = (coverage - spec.target_coverage) ** 2
    else:
        penalty = max(0.0, spec.target_coverage - coverage) ** 2
    total = spec.alpha * (risk + spec.lam * penalty) + (1.0 - spec.alpha) * (w / n)
    return StepStats(
        loss=total, coverage=coverage, selective_risk=risk, correct=correct
    )


class DataParallelEngine:
    """Drives N supervised workers through the two-phase protocol.

    The arena is sized lazily on the first :meth:`train_step` (batch
    geometry and dtypes are only known then).  After each step the
    model's ``param.grad`` holds the summed shard gradients — the
    caller clips and applies the optimizer exactly as in serial
    training; the engine re-publishes the updated parameters at the
    start of the next step.

    ``retry`` bounds worker respawns (per rank) and paces them with
    exponential backoff; ``retry.max_retries == 0`` means a lost worker
    is never replaced and the pool simply shrinks.
    """

    def __init__(
        self,
        model,
        objective: ObjectiveSpec,
        num_workers: int,
        max_batch: int,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        registry=None,
    ) -> None:
        if num_workers < 2:
            raise ValueError("DataParallelEngine needs num_workers >= 2")
        if not parallel_supported(num_workers):
            raise RuntimeError("parallel execution is not supported here")
        self.model = model
        self.objective = objective
        self.num_workers = int(num_workers)
        self.max_batch = int(max_batch)
        self._timeout = float(timeout)
        self.retry = RetryPolicy() if retry is None else retry
        self._params = list(model.parameters())
        self._sizes = [int(p.data.size) for p in self._params]
        self._total_size = sum(self._sizes)
        self._pool: Optional[WorkerPool] = None
        self._arena: Optional[ShmArena] = None
        self._grad_total: Optional[np.ndarray] = None
        self._active: set = set()
        self._respawns: dict = {}
        from ..obs.metrics import default_registry

        reg = default_registry() if registry is None else registry
        self._m_deaths = reg.counter("resilience.worker.deaths")
        self._m_restarts = reg.counter("resilience.worker.restarts")
        self._m_retries = reg.counter("resilience.step.retries")
        #: Fleet telemetry: worker registries are polled over the pipes
        #: (:meth:`poll_telemetry`) and merged here; a crashed worker's
        #: last snapshot is retired into the baseline, not lost.
        self.fleet = FleetAggregator()
        self._registry = reg

    # ------------------------------------------------------------------
    def _start(self, inputs: np.ndarray, labels: np.ndarray, weights: np.ndarray) -> None:
        from ..nn.tensor import get_default_dtype

        capacity = max(self.max_batch, inputs.shape[0])
        self.max_batch = capacity
        param_dtype = self._params[0].data.dtype
        specs = [
            ArraySpec("params", (self._total_size,), np.dtype(param_dtype).str),
            ArraySpec(
                "grads",
                (self.num_workers, self._total_size),
                np.dtype(param_dtype).str,
            ),
            ArraySpec(
                "inputs",
                (capacity,) + tuple(inputs.shape[1:]),
                np.dtype(inputs.dtype).str,
            ),
            ArraySpec("labels", (capacity,), np.dtype(np.int64).str),
            ArraySpec("weights", (capacity,), np.dtype(weights.dtype).str),
        ]
        self._arena = ShmArena.create(specs)
        self._grad_total = np.empty((self._total_size,), dtype=param_dtype)
        # The model ships with zeroed tape state so it pickles cleanly
        # under spawn; fork inherits it for free either way.
        self.model.zero_grad()
        payload = {
            "handle": self._arena.handle(),
            "model": self.model,
            "objective": self.objective,
            "dtype": np.dtype(get_default_dtype()).str,
        }
        self._pool = WorkerPool(
            self.num_workers, _engine_worker, payload=payload, timeout=self._timeout
        )
        self._active = set(range(self.num_workers))
        self._respawns = {}

    def _write_params(self) -> None:
        flat = self._arena.view("params")
        offset = 0
        for param, size in zip(self._params, self._sizes):
            flat[offset:offset + size] = param.data.reshape(-1)
            offset += size

    # ------------------------------------------------------------------
    def train_step(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> StepStats:
        """One synchronous data-parallel step over a mini-batch.

        On return ``param.grad`` of every model parameter is the exact
        full-batch gradient (summed over shards); the caller applies
        the optimizer step.

        A worker crash mid-step triggers abort → recover → retry of the
        *same* batch on the surviving (possibly respawned) workers;
        only a fully successful attempt publishes gradients, so the
        training trajectory is unaffected by the faults.  Raises
        :class:`ParallelUnavailable` (after shutting down) once fewer
        than two workers remain.
        """
        n = int(inputs.shape[0])
        if n == 0:
            raise ValueError("cannot step on an empty batch")
        if weights is None:
            weights = np.ones((n,), dtype=np.float32)
        if self._pool is None:
            self._start(inputs, labels, weights)
        if n > self.max_batch:
            raise ValueError(
                f"batch of {n} exceeds engine capacity {self.max_batch}"
            )
        self._write_params()
        self._arena.view("inputs")[:n] = inputs
        self._arena.view("labels")[:n] = labels
        self._arena.view("weights")[:n] = weights

        # Each failed attempt removes or respawns at least one worker,
        # and respawns are bounded per rank, so this loop terminates.
        attempts = self.num_workers * (self.retry.max_retries + 1) + 1
        for _ in range(attempts):
            if len(self._active) < 2:
                break
            try:
                return self._step_once(n)
            except _StepFailure as failure:
                self._m_retries.inc()
                self._recover(failure.dead)
            except Exception:
                # Worker-side logic error (deterministic — retrying
                # cannot help) or an unexpected parent-side fault:
                # release the pool and surface it.
                self.shutdown()
                raise
        self.shutdown()
        raise ParallelUnavailable(
            "data-parallel pool degraded below two workers; "
            "fall back to serial execution"
        )

    def _step_once(self, n: int) -> StepStats:
        """One attempt at the two-phase protocol over the active set."""
        active = sorted(self._active)
        bounds = _shard_bounds(n, len(active))
        # Disarmed cost: one global read per step attempt.  Armed, the
        # step span's context rides each shard dispatch and the workers'
        # shard-forward span records come home with the partials.
        tracer = current_tracer()
        step_span = (
            tracer.start_span("parallel.step", n=n, workers=len(active))
            if tracer is not None else None
        )
        ctx = tuple(step_span.context) if step_span is not None else None
        dead: List[int] = []
        delivered: List[int] = []
        for rank, (lo, hi) in zip(active, bounds):
            try:
                self._pool.send(rank, ("step", lo, hi, ctx))
                delivered.append(rank)
            except (BrokenPipeError, OSError):
                dead.append(rank)
        if dead:
            if step_span is not None:
                tracer.end(step_span, status="error")
            raise _StepFailure(dead + self._abort_ranks(delivered))

        partials = []
        for rank in active:
            try:
                partials.append(self._pool.recv(rank))
            except WorkerCrashed:
                dead.append(rank)
        if dead:
            survivors = [r for r in active if r not in dead]
            if step_span is not None:
                tracer.end(step_span, status="error")
            raise _StepFailure(dead + self._abort_ranks(survivors))
        if tracer is not None:
            for p in partials:
                if len(p) > 5 and p[5] is not None:
                    tracer.ingest(p[5])
        u = sum(p[1] for p in partials)
        v = sum(p[2] for p in partials)
        w = sum(p[3] for p in partials)
        correct = sum(p[4] for p in partials)

        k_u, k_v, k_w = _coefficients(self.objective, n, u, v, w)
        for rank in active:
            try:
                self._pool.send(rank, ("coeff", k_u, k_v, k_w))
            except (BrokenPipeError, OSError):
                dead.append(rank)
        if not dead:
            for rank in active:
                try:
                    self._pool.recv(rank)  # "done" ack: grad row complete
                except WorkerCrashed:
                    dead.append(rank)
        if dead:
            survivors = [r for r in active if r not in dead]
            if step_span is not None:
                tracer.end(step_span, status="error")
            raise _StepFailure(dead + self._abort_ranks(survivors))
        if step_span is not None:
            tracer.end(step_span)

        grads = self._arena.view("grads")
        np.sum(grads, axis=0, out=self._grad_total)
        offset = 0
        for param, size in zip(self._params, self._sizes):
            param.grad = self._grad_total[offset:offset + size].reshape(
                param.data.shape
            )
            offset += size
        return _batch_stats(self.objective, n, u, v, w, correct)

    # ------------------------------------------------------------------
    def _abort_ranks(self, ranks: Sequence[int]) -> List[int]:
        """Return the listed workers to protocol top-level.

        Sends the ``abort`` control message and drains stale in-flight
        replies (``partial`` / ``done``) until each worker acknowledges
        with ``aborted``.  Workers that die during the handshake are
        returned as additional casualties.
        """
        casualties: List[int] = []
        drain_timeout = min(self._timeout, 10.0)
        for rank in ranks:
            try:
                self._pool.send(rank, ("abort",))
            except (BrokenPipeError, OSError):
                casualties.append(rank)
                continue
            while True:
                try:
                    message = self._pool.recv(rank, timeout=drain_timeout)
                except RuntimeError:  # crashed, wedged, or errored
                    casualties.append(rank)
                    break
                if message[0] == "aborted":
                    break
        return casualties

    def _recover(self, dead: Sequence[int]) -> None:
        """Process casualties: zero their gradient rows, log, and try
        to respawn each under the retry policy's budget."""
        grads = self._arena.view("grads")
        for rank in sorted(set(dead)):
            self._active.discard(rank)
            grads[rank].fill(0)
            self._m_deaths.inc()
            # The casualty's in-process registries are gone; keep its
            # last-published snapshot in the fleet totals.
            self.fleet.retire(f"rank{rank}")
            record_flight_event(
                "parallel_worker_death", rank=rank,
                exitcode=self._pool.exitcode(rank),
            )
            dump_flight("worker-crash")
            logger.warning(
                "parallel worker %d lost (exit code %s)",
                rank,
                self._pool.exitcode(rank),
            )
            used = self._respawns.get(rank, 0)
            while used < self.retry.max_retries:
                self.retry.sleep(used)
                used += 1
                self._respawns[rank] = used
                try:
                    self._pool.respawn(rank)
                    self._pool.ping(rank, timeout=min(self._timeout, 30.0))
                except (RuntimeError, OSError):
                    continue
                self._active.add(rank)
                self._m_restarts.inc()
                logger.info("parallel worker %d respawned", rank)
                break

    def health_check(self) -> None:
        """Heartbeat every active worker, replacing unresponsive ones.

        Raises :class:`ParallelUnavailable` (after shutdown) when the
        pool has degraded below two workers.  Called by the trainer at
        epoch boundaries; cost is one ping round-trip per worker.
        """
        if self._pool is None:
            return
        dead = []
        for rank in sorted(self._active):
            try:
                self._pool.ping(rank, timeout=min(self._timeout, 30.0))
            except WorkerCrashed:
                dead.append(rank)
        if dead:
            self._recover(dead)
        if len(self._active) < 2:
            self.shutdown()
            raise ParallelUnavailable(
                "data-parallel pool degraded below two workers; "
                "fall back to serial execution"
            )
        self.poll_telemetry()

    def poll_telemetry(self) -> None:
        """Pull every active worker's metric snapshot into the fleet.

        Safe only between steps (the pipes must be at protocol
        top-level); the trainer calls it via :meth:`health_check` at
        epoch boundaries.  An unresponsive worker is skipped — its
        death will be noticed by the next step or heartbeat.
        """
        if self._pool is None:
            return
        for rank in sorted(self._active):
            try:
                self._pool.send(rank, ("telemetry",))
                reply = self._pool.recv(rank, timeout=min(self._timeout, 30.0))
            except (WorkerCrashed, OSError):
                continue
            if isinstance(reply, tuple) and reply and reply[0] == "telemetry":
                self.fleet.publish(f"rank{rank}", reply[2])

    def telemetry_snapshot(self) -> dict:
        """Fleet-wide mergeable snapshot: workers + the parent registry."""
        return self.fleet.merged(
            extra=[mergeable_snapshot(self._registry, "parent")]
        )

    @property
    def active_workers(self) -> int:
        """Workers currently in the active set (0 before start-up)."""
        return len(self._active)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._active = set()

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
def _engine_worker(rank: int, num_workers: int, pipe, payload) -> None:
    """Worker side of the two-phase protocol (runs in a subprocess).

    Telemetry lives in a fresh worker-local registry (forked children
    inherit the parent's registry contents — counting into it would
    double-count pre-fork history); the parent pulls a mergeable
    snapshot with a ``("telemetry",)`` control message.
    """
    import time as _time

    from .. import nn
    from ..nn import functional as F
    from ..nn.tensor import Tensor, set_default_dtype
    from ..obs.aggregate import mergeable_snapshot as _snapshot
    from ..obs.metrics import MetricsRegistry

    set_default_dtype(np.dtype(payload["dtype"]).type)
    arena = ShmArena.attach(payload["handle"])
    model = payload["model"]
    spec: ObjectiveSpec = payload["objective"]
    model.train()
    registry = MetricsRegistry()
    m_steps = registry.counter("parallel.worker.steps")
    m_items = registry.counter("parallel.worker.items")
    m_shard = registry.histogram("parallel.worker.shard_s")

    params = list(model.parameters())
    sizes = [int(p.data.size) for p in params]
    flat_params = arena.view("params")
    # Bind every parameter onto the shared segment: the parent's
    # post-optimizer writes become visible without any transport.
    offset = 0
    for param, size in zip(params, sizes):
        param.data = flat_params[offset:offset + size].reshape(param.data.shape)
        offset += size
    inputs = arena.view("inputs")
    labels = arena.view("labels")
    weights = arena.view("weights")
    grad_row = arena.view("grads")[rank]

    try:
        # Strict forward -> backward lockstep, so per-layer scratch
        # reuse is safe in the workers too.
        scratch_guard = F.train_scratch()
        scratch_guard.__enter__()
        while True:
            message = pipe.recv()
            tag = message[0]
            if tag == "stop":
                return
            if tag == "ping":
                chaos_point("parallel.worker.ping", rank=rank)
                pipe.send(("pong", rank))
                continue
            if tag == "abort":  # nothing in flight — just acknowledge
                pipe.send(("aborted",))
                continue
            if tag == "telemetry":
                pipe.send(("telemetry", rank, _snapshot(registry, f"rank{rank}")))
                continue
            lo, hi = message[1], message[2]
            ctx = message[3] if len(message) > 3 else None
            chaos_point("parallel.worker.step", rank=rank, lo=lo, hi=hi)
            if hi > lo:
                shard_started = _time.perf_counter()
                with remote_span(
                    "parallel.shard", ctx, rank=rank, lo=lo, hi=hi
                ) as shard_span:
                    x = Tensor(inputs[lo:hi])
                    if spec.kind == "selective":
                        logits, selection = model(x)
                    else:
                        outputs = model(x)
                        logits = outputs[0] if isinstance(outputs, tuple) else outputs
                        selection = None
                    per_sample = nn.cross_entropy(
                        logits, labels[lo:hi], reduction="none"
                    )
                    # Same float32 weight cast as the serial objective.
                    per_sample = per_sample * Tensor(
                        np.asarray(weights[lo:hi], dtype=np.float32)
                    )
                    w_sum = per_sample.sum()
                    if selection is not None:
                        u_sum = (per_sample * selection).sum()
                        v_sum = selection.sum()
                    else:
                        u_sum = v_sum = None
                    correct = int(
                        (logits.data.argmax(axis=1) == labels[lo:hi]).sum()
                    )
                m_steps.inc()
                m_items.inc(hi - lo)
                m_shard.observe(_time.perf_counter() - shard_started)
                pipe.send((
                    "partial",
                    float(u_sum.data) if u_sum is not None else 0.0,
                    float(v_sum.data) if v_sum is not None else 0.0,
                    float(w_sum.data),
                    correct,
                    shard_span.to_record() if shard_span is not None else None,
                ))
            else:  # empty shard: stay in protocol lockstep
                w_sum = u_sum = v_sum = None
                pipe.send(("partial", 0.0, 0.0, 0.0, 0, None))

            # Phase 2: wait for the coefficients, servicing control
            # messages; "abort" drops the step and returns to top.
            while True:
                message = pipe.recv()
                tag = message[0]
                if tag == "stop":
                    return
                if tag == "ping":
                    chaos_point("parallel.worker.ping", rank=rank)
                    pipe.send(("pong", rank))
                    continue
                if tag == "abort":
                    pipe.send(("aborted",))
                    break
                if tag == "telemetry":
                    pipe.send(
                        ("telemetry", rank, _snapshot(registry, f"rank{rank}"))
                    )
                    continue
                _, k_u, k_v, k_w = message
                model.zero_grad()
                if w_sum is not None:
                    surrogate = k_w * w_sum
                    if u_sum is not None:
                        surrogate = surrogate + k_u * u_sum + k_v * v_sum
                    surrogate.backward()
                offset = 0
                for param, size in zip(params, sizes):
                    if param.grad is None:
                        grad_row[offset:offset + size] = 0
                    else:
                        grad_row[offset:offset + size] = param.grad.reshape(-1)
                    offset += size
                pipe.send(("done",))
                break
    finally:
        arena.close()
