"""Synchronous data-parallel training engine.

Each step splits the mini-batch across N workers, runs forward/backward
on the shards, and sums the shard gradients into the parent model's
``param.grad`` — the parent then applies one ordinary optimizer step,
so data-parallel training reproduces the serial trajectory (same seed,
same batches, same updates) up to floating-point summation order.

Exactness.  The SelectiveNet objective (Eq. 9) is *nonlinear* in batch
statistics — coverage appears in a denominator and inside the penalty —
so naively averaging per-shard losses would compute the gradient of a
different function.  Instead every step runs a two-phase protocol:

1. Workers forward their shard and report the three batch partial sums
   the objective depends on: ``U = sum(w*l*g)``, ``V = sum(g)``,
   ``W = sum(w*l)`` (per-sample CE ``l``, selection ``g``, weights
   ``w``).
2. The parent combines them into the full-batch statistics and sends
   back three scalar coefficients ``kU, kV, kW`` — the partial
   derivatives of the objective with respect to those sums.  Each
   worker then backpropagates the *linear* surrogate
   ``kU*U_s + kV*V_s + kW*W_s`` of its own shard tensors.

By the chain rule the sum of the surrogate gradients equals the exact
gradient of the full-batch objective; plain cross-entropy is the
``kU = kV = 0, kW = 1/N`` special case.  Parameters, batches, and the
per-worker gradient slab all live in one shared-memory arena
(:mod:`repro.parallel.shm`), so no ndarray is ever pickled after
start-up; workers bind their model parameters directly onto the arena
views, making the parent's post-step weights visible for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .pool import WorkerPool, parallel_supported
from .shm import ArraySpec, ShmArena

__all__ = ["ObjectiveSpec", "StepStats", "DataParallelEngine"]


@dataclass(frozen=True)
class ObjectiveSpec:
    """Which training objective the workers evaluate.

    ``kind="cross_entropy"`` is the full-coverage path; ``"selective"``
    is the Eq. 9 objective with the trainer's hyper-parameters.
    ``eps`` must match :func:`repro.core.losses.selective_risk`.
    """

    kind: str = "cross_entropy"
    target_coverage: float = 1.0
    lam: float = 0.5
    alpha: float = 0.5
    penalty_mode: str = "symmetric"
    eps: float = 1e-8

    def __post_init__(self) -> None:
        if self.kind not in ("cross_entropy", "selective"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.penalty_mode not in ("symmetric", "hinge"):
            raise ValueError(f"unknown penalty mode {self.penalty_mode!r}")


@dataclass
class StepStats:
    """Full-batch statistics of one data-parallel step, matching what
    the serial loop reads off the loss terms."""

    loss: float
    coverage: float
    selective_risk: float
    correct: int


def _shard_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, deterministic split of ``range(n)`` into ``workers``
    near-equal shards (first ``n % workers`` shards get the extra)."""
    base, rem = divmod(n, workers)
    bounds = []
    lo = 0
    for rank in range(workers):
        hi = lo + base + (1 if rank < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _coefficients(
    spec: ObjectiveSpec, n: int, u: float, v: float, w: float
) -> Tuple[float, float, float]:
    """Partial derivatives (kU, kV, kW) of the objective with respect
    to the batch sums, evaluated at the current statistics."""
    if spec.kind == "cross_entropy":
        return 0.0, 0.0, 1.0 / n
    coverage = v / n
    d = coverage + spec.eps
    if spec.penalty_mode == "symmetric":
        dpsi = 2.0 * (coverage - spec.target_coverage)
    else:  # hinge: psi = max(0, c0 - c)^2
        gap = spec.target_coverage - coverage
        dpsi = -2.0 * gap if gap > 0 else 0.0
    k_u = spec.alpha / (n * d)
    k_v = spec.alpha * (-u / (n * n * d * d) + spec.lam * dpsi / n)
    k_w = (1.0 - spec.alpha) / n
    return k_u, k_v, k_w


def _batch_stats(
    spec: ObjectiveSpec, n: int, u: float, v: float, w: float, correct: int
) -> StepStats:
    """Recover the loss terms the serial loop logs from the sums."""
    if spec.kind == "cross_entropy":
        loss = w / n
        return StepStats(loss=loss, coverage=1.0, selective_risk=loss, correct=correct)
    coverage = v / n
    risk = (u / n) / (coverage + spec.eps)
    if spec.penalty_mode == "symmetric":
        penalty = (coverage - spec.target_coverage) ** 2
    else:
        penalty = max(0.0, spec.target_coverage - coverage) ** 2
    total = spec.alpha * (risk + spec.lam * penalty) + (1.0 - spec.alpha) * (w / n)
    return StepStats(
        loss=total, coverage=coverage, selective_risk=risk, correct=correct
    )


class DataParallelEngine:
    """Drives N workers through the two-phase protocol above.

    The arena is sized lazily on the first :meth:`train_step` (batch
    geometry and dtypes are only known then).  After each step the
    model's ``param.grad`` holds the summed shard gradients — the
    caller clips and applies the optimizer exactly as in serial
    training; the engine re-publishes the updated parameters at the
    start of the next step.
    """

    def __init__(
        self,
        model,
        objective: ObjectiveSpec,
        num_workers: int,
        max_batch: int,
        timeout: float = 120.0,
    ) -> None:
        if num_workers < 2:
            raise ValueError("DataParallelEngine needs num_workers >= 2")
        if not parallel_supported(num_workers):
            raise RuntimeError("parallel execution is not supported here")
        self.model = model
        self.objective = objective
        self.num_workers = int(num_workers)
        self.max_batch = int(max_batch)
        self._timeout = float(timeout)
        self._params = list(model.parameters())
        self._sizes = [int(p.data.size) for p in self._params]
        self._total_size = sum(self._sizes)
        self._pool: Optional[WorkerPool] = None
        self._arena: Optional[ShmArena] = None
        self._grad_total: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _start(self, inputs: np.ndarray, labels: np.ndarray, weights: np.ndarray) -> None:
        from ..nn.tensor import get_default_dtype

        capacity = max(self.max_batch, inputs.shape[0])
        self.max_batch = capacity
        param_dtype = self._params[0].data.dtype
        specs = [
            ArraySpec("params", (self._total_size,), np.dtype(param_dtype).str),
            ArraySpec(
                "grads",
                (self.num_workers, self._total_size),
                np.dtype(param_dtype).str,
            ),
            ArraySpec(
                "inputs",
                (capacity,) + tuple(inputs.shape[1:]),
                np.dtype(inputs.dtype).str,
            ),
            ArraySpec("labels", (capacity,), np.dtype(np.int64).str),
            ArraySpec("weights", (capacity,), np.dtype(weights.dtype).str),
        ]
        self._arena = ShmArena.create(specs)
        self._grad_total = np.empty((self._total_size,), dtype=param_dtype)
        # The model ships with zeroed tape state so it pickles cleanly
        # under spawn; fork inherits it for free either way.
        self.model.zero_grad()
        payload = {
            "handle": self._arena.handle(),
            "model": self.model,
            "objective": self.objective,
            "dtype": np.dtype(get_default_dtype()).str,
        }
        self._pool = WorkerPool(
            self.num_workers, _engine_worker, payload=payload, timeout=self._timeout
        )

    def _write_params(self) -> None:
        flat = self._arena.view("params")
        offset = 0
        for param, size in zip(self._params, self._sizes):
            flat[offset:offset + size] = param.data.reshape(-1)
            offset += size

    # ------------------------------------------------------------------
    def train_step(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> StepStats:
        """One synchronous data-parallel step over a mini-batch.

        On return ``param.grad`` of every model parameter is the exact
        full-batch gradient (summed over shards); the caller applies
        the optimizer step.
        """
        n = int(inputs.shape[0])
        if n == 0:
            raise ValueError("cannot step on an empty batch")
        if weights is None:
            weights = np.ones((n,), dtype=np.float32)
        if self._pool is None:
            self._start(inputs, labels, weights)
        if n > self.max_batch:
            raise ValueError(
                f"batch of {n} exceeds engine capacity {self.max_batch}"
            )
        self._write_params()
        self._arena.view("inputs")[:n] = inputs
        self._arena.view("labels")[:n] = labels
        self._arena.view("weights")[:n] = weights

        bounds = _shard_bounds(n, self.num_workers)
        for rank, (lo, hi) in enumerate(bounds):
            self._pool.send(rank, ("step", lo, hi))
        partials = self._pool.gather()
        u = sum(p[1] for p in partials)
        v = sum(p[2] for p in partials)
        w = sum(p[3] for p in partials)
        correct = sum(p[4] for p in partials)

        k_u, k_v, k_w = _coefficients(self.objective, n, u, v, w)
        self._pool.broadcast(("coeff", k_u, k_v, k_w))
        self._pool.gather()  # "done" acks — grad slab rows are complete

        grads = self._arena.view("grads")
        np.sum(grads, axis=0, out=self._grad_total)
        offset = 0
        for param, size in zip(self._params, self._sizes):
            param.grad = self._grad_total[offset:offset + size].reshape(
                param.data.shape
            )
            offset += size
        return _batch_stats(self.objective, n, u, v, w, correct)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
def _engine_worker(rank: int, num_workers: int, pipe, payload) -> None:
    """Worker side of the two-phase protocol (runs in a subprocess)."""
    from .. import nn
    from ..nn import functional as F
    from ..nn.tensor import Tensor, set_default_dtype

    set_default_dtype(np.dtype(payload["dtype"]).type)
    arena = ShmArena.attach(payload["handle"])
    model = payload["model"]
    spec: ObjectiveSpec = payload["objective"]
    model.train()

    params = list(model.parameters())
    sizes = [int(p.data.size) for p in params]
    flat_params = arena.view("params")
    # Bind every parameter onto the shared segment: the parent's
    # post-optimizer writes become visible without any transport.
    offset = 0
    for param, size in zip(params, sizes):
        param.data = flat_params[offset:offset + size].reshape(param.data.shape)
        offset += size
    inputs = arena.view("inputs")
    labels = arena.view("labels")
    weights = arena.view("weights")
    grad_row = arena.view("grads")[rank]

    try:
        # Strict forward -> backward lockstep, so per-layer scratch
        # reuse is safe in the workers too.
        scratch_guard = F.train_scratch()
        scratch_guard.__enter__()
        while True:
            message = pipe.recv()
            if message[0] == "stop":
                return
            _, lo, hi = message
            if hi > lo:
                x = Tensor(inputs[lo:hi])
                if spec.kind == "selective":
                    logits, selection = model(x)
                else:
                    outputs = model(x)
                    logits = outputs[0] if isinstance(outputs, tuple) else outputs
                    selection = None
                per_sample = nn.cross_entropy(
                    logits, labels[lo:hi], reduction="none"
                )
                # Same float32 weight cast as the serial objective.
                per_sample = per_sample * Tensor(
                    np.asarray(weights[lo:hi], dtype=np.float32)
                )
                w_sum = per_sample.sum()
                if selection is not None:
                    u_sum = (per_sample * selection).sum()
                    v_sum = selection.sum()
                else:
                    u_sum = v_sum = None
                correct = int(
                    (logits.data.argmax(axis=1) == labels[lo:hi]).sum()
                )
                pipe.send((
                    "partial",
                    float(u_sum.data) if u_sum is not None else 0.0,
                    float(v_sum.data) if v_sum is not None else 0.0,
                    float(w_sum.data),
                    correct,
                ))
            else:  # empty shard: stay in protocol lockstep
                w_sum = u_sum = v_sum = None
                pipe.send(("partial", 0.0, 0.0, 0.0, 0))

            message = pipe.recv()
            if message[0] == "stop":  # parent aborted mid-step
                return
            _, k_u, k_v, k_w = message
            model.zero_grad()
            if w_sum is not None:
                surrogate = k_w * w_sum
                if u_sum is not None:
                    surrogate = surrogate + k_u * u_sum + k_v * v_sum
                surrogate.backward()
            offset = 0
            for param, size in zip(params, sizes):
                if param.grad is None:
                    grad_row[offset:offset + size] = 0
                else:
                    grad_row[offset:offset + size] = param.grad.reshape(-1)
                offset += size
            pipe.send(("done",))
    finally:
        arena.close()
