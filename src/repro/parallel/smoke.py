"""Two-worker training smoke test (``python -m repro.parallel.smoke``).

A fast end-to-end exercise of the whole parallel stack — shared-memory
arena, worker pool, two-phase gradient protocol, serial fallback — on a
tiny synthetic dataset.  Exits non-zero if the parallel parameters
diverge from a serial run with the same seed; ``scripts/check.sh`` runs
it under a hard timeout.
"""

from __future__ import annotations

import sys

import numpy as np

from ..core.cnn import BackboneConfig, WaferCNN
from ..core.trainer import TrainConfig, Trainer
from ..data.dataset import WaferDataset
from .pool import parallel_supported


def _tiny_dataset(n: int = 48, size: int = 16) -> WaferDataset:
    rng = np.random.default_rng(0)
    grids = rng.integers(0, 3, size=(n, size, size))
    labels = rng.integers(0, 4, size=(n,)).astype(np.int64)
    return WaferDataset(grids, labels, ("a", "b", "c", "d"))


def _train(num_workers: int) -> WaferCNN:
    model = WaferCNN(
        4,
        BackboneConfig(
            input_size=16, conv_channels=(4, 4), conv_kernels=(3, 3),
            fc_units=16, seed=7,
        ),
    )
    config = TrainConfig(
        epochs=2, batch_size=16, seed=3, num_workers=num_workers
    )
    Trainer(model, config).fit(_tiny_dataset())
    return model


def main() -> int:
    if not parallel_supported(2):
        print("parallel execution unsupported on this platform; "
              "serial fallback covers it — smoke SKIPPED")
        return 0
    serial = _train(num_workers=1)
    parallel = _train(num_workers=2)
    worst = 0.0
    for (name, p_serial), (_, p_parallel) in zip(
        serial.named_parameters(), parallel.named_parameters()
    ):
        if not np.allclose(
            p_serial.data.astype(np.float64),
            p_parallel.data.astype(np.float64),
            rtol=1e-4,
            atol=1e-5,
        ):
            print(f"FAIL: parameter {name} diverged between serial and "
                  f"2-worker training")
            return 1
        worst = max(worst, float(np.abs(p_serial.data - p_parallel.data).max()))
    print(f"parallel smoke OK (2 workers, max |serial - parallel| = {worst:.3g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
