"""``repro.parallel`` — multiprocessing training & augmentation engine.

Three layers:

* :mod:`~repro.parallel.shm` — one shared-memory segment holding named
  ndarray views (:class:`ShmArena`), the pickle-free transport for
  parameters, batches, and gradients.
* :mod:`~repro.parallel.pool` — :class:`WorkerPool` processes driven
  over pipes with BLAS threadpools pinned to one thread, plus the
  generic order-preserving :func:`parallel_map`.
* :mod:`~repro.parallel.engine` — :class:`DataParallelEngine`,
  synchronous data-parallel SGD whose two-phase partial-sum protocol
  keeps the nonlinear SelectiveNet objective gradient-exact.

Everything degrades gracefully: when ``num_workers <= 1`` or the
platform lacks ``multiprocessing.shared_memory``
(:func:`parallel_supported` is the single gate), callers fall back to
the serial code path with identical results.

Supervision (see :mod:`repro.resilience`): worker crashes surface as
:class:`WorkerCrashed`, the engine heartbeats / respawns workers and
re-shards in-flight batches, and :class:`ParallelUnavailable` tells
callers the pool degraded below usefulness — fall back to serial.
"""

from .engine import (
    DataParallelEngine,
    ObjectiveSpec,
    ParallelUnavailable,
    StepStats,
)
from .pool import (
    BLAS_ENV_VARS,
    WorkerCrashed,
    WorkerPool,
    blas_single_thread,
    parallel_map,
    parallel_supported,
    pin_blas_threads,
)
from .shm import HAVE_SHARED_MEMORY, ArraySpec, ShmArena, reclaim_segment

__all__ = [
    "ArraySpec",
    "ShmArena",
    "HAVE_SHARED_MEMORY",
    "reclaim_segment",
    "WorkerPool",
    "WorkerCrashed",
    "parallel_map",
    "parallel_supported",
    "pin_blas_threads",
    "blas_single_thread",
    "BLAS_ENV_VARS",
    "DataParallelEngine",
    "ObjectiveSpec",
    "StepStats",
    "ParallelUnavailable",
]
