"""Shared-memory ndarray transport for the worker pool.

A :class:`ShmArena` packs several named ndarrays into one
``multiprocessing.shared_memory`` segment.  The parent creates the
arena, ships a tiny picklable :meth:`ShmArena.handle` to each worker,
and both sides then read/write the same physical pages — batches and
gradients cross the process boundary without pickling a single float.

Layout: arrays are placed back-to-back at 64-byte aligned offsets
(cache-line / SIMD friendly), described by :class:`ArraySpec` entries
that travel with the handle so workers can reconstruct every view.
"""

from __future__ import annotations

import atexit
import os
import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    HAVE_SHARED_MEMORY = False

__all__ = ["ArraySpec", "ShmArena", "HAVE_SHARED_MEMORY", "reclaim_segment"]

#: Alignment (bytes) of every array inside the segment.
_ALIGN = 64

# ----------------------------------------------------------------------
# Leak guard: named segments outlive their creating process unless they
# are unlinked, so every owner arena is tracked here and reclaimed by a
# weakref finalizer (covers "owner object dropped without close()") and
# an atexit sweep (covers "interpreter exits with live arenas").  The
# registry records the owning pid because forked workers inherit it —
# a child must never unlink segments its parent still uses.
# ----------------------------------------------------------------------
_OWNED_SEGMENTS: Dict[str, int] = {}
_atexit_registered = False


def _account_owned_segment(delta_segments: int, delta_bytes: int) -> None:
    """Mirror owner-side arena lifecycle into ``parallel.shm.*`` gauges.

    Best-effort: gauge updates must never interfere with segment
    creation/cleanup (which can run from finalizers and atexit hooks,
    possibly during interpreter teardown).
    """
    try:
        from ..obs.metrics import default_registry

        registry = default_registry()
        registry.gauge("parallel.shm.segments").add(delta_segments)
        registry.gauge("parallel.shm.nbytes").add(delta_bytes)
    except Exception:  # pragma: no cover - teardown-time import races
        pass


def reclaim_segment(name: str) -> bool:
    """Unlink a named segment if it still exists; True when reclaimed.

    Used by the leak guard and by supervisors cleaning up after a
    killed owner process.
    """
    if not HAVE_SHARED_MEMORY:
        return False
    try:
        segment = _attach_segment(name)
    except (FileNotFoundError, OSError):
        return False
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the race
        return False
    finally:
        segment.close()
    return True


def _register_owner(name: str) -> None:
    global _atexit_registered
    _OWNED_SEGMENTS[name] = os.getpid()
    if not _atexit_registered:
        atexit.register(_cleanup_owned_segments)
        _atexit_registered = True


def _unregister_owner(name: str) -> None:
    _OWNED_SEGMENTS.pop(name, None)


def _finalize_owner(name: str) -> None:
    if _OWNED_SEGMENTS.get(name) == os.getpid():
        _unregister_owner(name)
        reclaim_segment(name)


def _cleanup_owned_segments() -> None:
    for name in list(_OWNED_SEGMENTS):
        _finalize_owner(name)


@dataclass(frozen=True)
class ArraySpec:
    """Shape/dtype descriptor of one named array inside an arena."""

    name: str
    shape: Tuple[int, ...]
    dtype: str  # numpy dtype string, e.g. "<f4"

    @property
    def nbytes(self) -> int:
        count = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        return count * np.dtype(self.dtype).itemsize


def _offsets(specs: Sequence[ArraySpec]) -> Dict[str, int]:
    offsets: Dict[str, int] = {}
    cursor = 0
    for spec in specs:
        if spec.name in offsets:
            raise ValueError(f"duplicate array name {spec.name!r}")
        offsets[spec.name] = cursor
        cursor += -(-spec.nbytes // _ALIGN) * _ALIGN
    return offsets


def _total_size(specs: Sequence[ArraySpec]) -> int:
    offsets = _offsets(specs)
    if not offsets:
        return _ALIGN
    last = specs[-1]
    return max(offsets[last.name] + last.nbytes, _ALIGN)


def _attach_segment(name: str):
    """Open an existing segment without tracking it (worker side).

    The creating process owns cleanup: its ``unlink()`` is the one
    unregister the (process-tree-wide) resource tracker should see.
    On Python >= 3.13 ``track=False`` expresses that directly; older
    versions re-register on attach, which is harmless — registration
    is a set add, and explicitly unregistering here instead would make
    the parent's later ``unlink()`` a double-remove (KeyError noise in
    the tracker)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 fallback
        return shared_memory.SharedMemory(name=name)


class ShmArena:
    """One shared-memory segment holding several named ndarray views."""

    def __init__(self, segment, specs: List[ArraySpec], owner: bool) -> None:
        self._segment = segment
        self._specs = {spec.name: spec for spec in specs}
        self._spec_list = specs
        self._offsets = _offsets(specs)
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        self._closed = False
        self._finalizer = None
        if owner:
            _register_owner(segment.name)
            # The finalizer must not reference ``self`` or the segment
            # object, or it would keep the arena alive forever.
            self._finalizer = weakref.finalize(
                self, _finalize_owner, segment.name
            )

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, specs: Iterable[ArraySpec]) -> "ShmArena":
        """Allocate a fresh segment sized for ``specs`` (parent side)."""
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        spec_list = list(specs)
        segment = shared_memory.SharedMemory(
            create=True, size=_total_size(spec_list)
        )
        _account_owned_segment(+1, segment.size)
        return cls(segment, spec_list, owner=True)

    def handle(self) -> Tuple[str, List[ArraySpec]]:
        """Picklable token from which a worker can :meth:`attach`."""
        return (self._segment.name, self._spec_list)

    @classmethod
    def attach(cls, handle: Tuple[str, List[ArraySpec]]) -> "ShmArena":
        """Open the parent's segment inside a worker process."""
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        name, spec_list = handle
        return cls(_attach_segment(name), list(spec_list), owner=False)

    # ------------------------------------------------------------------
    def view(self, name: str) -> np.ndarray:
        """Ndarray view of one named array (cached per arena)."""
        cached = self._views.get(name)
        if cached is not None:
            return cached
        spec = self._specs[name]
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=self._segment.buf,
            offset=self._offsets[name],
        )
        self._views[name] = view
        return view

    @property
    def nbytes(self) -> int:
        return self._segment.size

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop views and unmap; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - stray external views
            pass
        if self._owner:
            if self._finalizer is not None:
                self._finalizer.detach()
            _unregister_owner(self._segment.name)
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            _account_owned_segment(-1, -self._segment.size)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
