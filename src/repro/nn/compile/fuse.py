"""Graph fusion: group :class:`~.ir.LazyOp` nodes into kernels.

This generalizes the hand-written eager conv→bias→ReLU→pool fusion to
*arbitrary* elementwise chains behind any GEMM producer:

* a ``conv2d`` or ``matmul`` absorbs every following single-consumer
  elementwise op (``bias_add``, ``relu``, ``sigmoid``, ``affine``, …)
  into one kernel — the chain runs in place on the GEMM output while it
  is still in the GEMM's natural layout;
* a conv-rooted kernel additionally absorbs a trailing non-overlapping
  ``maxpool`` that tiles its output exactly (the same condition the
  eager ``Sequential`` fast path checks), so the full-size activation
  never materializes in NCHW;
* elementwise ops with no producer to ride fuse with each other into a
  single chain kernel;
* ``reshape`` becomes a zero-copy alias of its input buffer;
* everything else lowers to a singleton kernel.

The output is a :class:`FusedProgram` — the unit the buffer planner
(:mod:`repro.nn.compile.plan`) and backends lower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .ir import ELEMENTWISE_KINDS, PRODUCER_KINDS, Graph, LazyOp

__all__ = ["Kernel", "FusedProgram", "fuse_graph"]


@dataclass
class Kernel:
    """One executable unit: a producer op plus everything fused onto it."""

    kind: str                  # "gemm", "elementwise", or the op's own kind
    ops: Tuple[LazyOp, ...]    # chain in execution order; ops[0] is the root
    inputs: Tuple[int, ...]    # external value ids, primary data input first
    output: int                # value id this kernel defines
    pool: Tuple[LazyOp, ...] = ()  # trailing fused maxpool (conv kernels only)

    @property
    def fused_away(self) -> int:
        """Ops this kernel absorbed beyond its root (telemetry)."""
        return len(self.ops) - 1 + len(self.pool)


@dataclass
class FusedProgram:
    """Kernels in execution order plus reshape aliasing."""

    graph: Graph
    kernels: List[Kernel]
    #: value id -> the earlier value whose buffer it aliases (reshape).
    aliases: Dict[int, int] = field(default_factory=dict)

    def resolve(self, value_id: int) -> int:
        """Follow alias links to the root buffer-owning value."""
        while value_id in self.aliases:
            value_id = self.aliases[value_id]
        return value_id

    @property
    def ops_fused(self) -> int:
        return sum(kernel.fused_away for kernel in self.kernels)


def _single_consumer(consumers: Dict[int, List[int]], value_id: int) -> int:
    """The one op consuming ``value_id``, or -1."""
    users = consumers.get(value_id, ())
    return users[0] if len(users) == 1 else -1


def _chain_extras_are_params(graph: Graph, op: LazyOp) -> bool:
    """Non-primary inputs of a fusable elementwise op must be leaves."""
    return all(graph.op(v).kind == "param" for v in op.inputs[1:])


def _pool_tiles_exactly(conv_shape: Tuple[int, ...], pool: LazyOp) -> bool:
    kernel = pool.params["kernel"]
    stride = pool.params["stride"]
    return (
        stride == kernel
        and conv_shape[2] % kernel[0] == 0
        and conv_shape[3] % kernel[1] == 0
    )


def fuse_graph(graph: Graph, output_ids: Tuple[int, ...] = ()) -> FusedProgram:
    """Partition ``graph`` into fused kernels (deterministic, one pass)."""
    consumers = graph.consumers()
    outputs = set(output_ids or graph.output_ids)
    program = FusedProgram(graph=graph, kernels=[])
    claimed = set()  # op ids folded into an earlier kernel

    for op in graph.ops:
        if op.id in claimed or op.kind in ("input", "param"):
            continue

        if op.kind == "reshape":
            program.aliases[op.id] = op.inputs[0]
            # An alias of a graph input still needs the data staged into
            # a buffer the executor owns? No — aliases resolve through
            # to external arrays too; the backend reshapes the view.
            continue

        if op.kind in PRODUCER_KINDS:
            chain = [op]
            tail = op
            while True:
                nxt_id = _single_consumer(consumers, tail.id)
                if nxt_id < 0 or tail.id in outputs:
                    break
                nxt = graph.op(nxt_id)
                if (
                    nxt.kind not in ELEMENTWISE_KINDS
                    or nxt.inputs[0] != tail.id
                    or not _chain_extras_are_params(graph, nxt)
                ):
                    break
                chain.append(nxt)
                claimed.add(nxt.id)
                tail = nxt
            pool_ops: Tuple[LazyOp, ...] = ()
            if op.kind == "conv2d" and tail.id not in outputs:
                nxt_id = _single_consumer(consumers, tail.id)
                if nxt_id >= 0:
                    nxt = graph.op(nxt_id)
                    if nxt.kind == "maxpool" and _pool_tiles_exactly(op.shape, nxt):
                        pool_ops = (nxt,)
                        claimed.add(nxt.id)
                        tail = nxt
            extras = [v for link in chain for v in link.inputs[1:]]
            program.kernels.append(
                Kernel(
                    kind="gemm",
                    ops=tuple(chain),
                    inputs=(op.inputs[0],) + tuple(extras),
                    output=tail.id,
                    pool=pool_ops,
                )
            )
            continue

        if op.kind in ELEMENTWISE_KINDS:
            chain = [op]
            tail = op
            while True:
                nxt_id = _single_consumer(consumers, tail.id)
                if nxt_id < 0 or tail.id in outputs:
                    break
                nxt = graph.op(nxt_id)
                if (
                    nxt.kind not in ELEMENTWISE_KINDS
                    or nxt.inputs[0] != tail.id
                    or not _chain_extras_are_params(graph, nxt)
                ):
                    break
                chain.append(nxt)
                claimed.add(nxt.id)
                tail = nxt
            extras = [v for link in chain for v in link.inputs[1:]]
            program.kernels.append(
                Kernel(
                    kind="elementwise",
                    ops=tuple(chain),
                    inputs=(op.inputs[0],) + tuple(extras),
                    output=tail.id,
                )
            )
            continue

        # Singleton kernel (softmax, pooling, upsample, ...).
        program.kernels.append(
            Kernel(kind=op.kind, ops=(op,), inputs=tuple(op.inputs), output=op.id)
        )

    return program
