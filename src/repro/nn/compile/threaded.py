"""Threaded compiled-graph backend: intra-op parallel GEMM/conv.

:class:`ThreadedBackend` executes every partitionable kernel as a
fixed-order sequence of row tiles dispatched to a persistent
:class:`~concurrent.futures.ThreadPoolExecutor`.  numpy releases the
GIL inside BLAS GEMMs and large ufunc loops, so tiles genuinely
overlap on separate cores even though the workers are threads — and
under the single-thread BLAS pinning :mod:`repro.parallel` enforces,
this is the *only* intra-op parallelism available on the serve path.

The bit-identity contract survives parallelism by construction:

* the partition (tile bounds) comes from the plan layer
  (:func:`repro.nn.compile.plan.partition_kernel`) and depends only on
  the kernel's geometry — never on the thread count — so every
  N-thread run executes the *same* tiles (a 1-worker pool runs the
  serial numpy-backend lowering instead: zero tiling overhead, and the
  probe below certifies the numbers cannot differ);
* each tile writes a disjoint row range of the shared output buffer,
  so there is no cross-tile reduction at all (every reduction an op
  performs stays inside one tile, in the serial fan-in order);
* row-sliced BLAS GEMMs are **probed** for bit-identity against the
  full-size GEMM at lowering time (:func:`gemm_slicing_bit_identical`):
  OpenBLAS switches micro-kernels by matrix size, so a sliced GEMM is
  *not* universally bit-equal to its full-size twin — kernels whose
  probe fails fall back to the serial lowering and are counted in
  ``compile.threads.kernels_serial``.  Parity with
  :class:`~.backend.NumpyBackend` is therefore guaranteed on whatever
  BLAS the process is running, not assumed from a library property.

Thread-pool sizing: ``configure_threads(n)`` (explicit) or the
``REPRO_COMPILE_THREADS`` environment variable; default
``min(4, cpu_count)``.  The pool is process-wide and lazily built;
sizing it never changes results, only wall-clock.

Telemetry (``repro.obs`` default registry):

* ``compile.threads.tiles`` — tiles dispatched (counter; tiles/s in
  ``repro.obs.top``);
* ``compile.threads.kernels_parallel`` / ``.kernels_serial`` — lowering
  decisions (counter; serial = below min-work, probe-failed, or
  unpartitionable);
* ``compile.threads.pool_size`` — configured worker count (gauge).
"""

from __future__ import annotations

import hashlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .backend import Getter, NumpyBackend, register_backend
from .fuse import FusedProgram, Kernel
from .plan import KernelPartition, partition_kernel

__all__ = [
    "ThreadedBackend",
    "configure_threads",
    "thread_count",
    "clamped_threads",
    "shutdown_pool",
    "gemm_slicing_bit_identical",
]

#: Default pool size cap — wafer kernels rarely profit past a few
#: cores, and serve replicas multiply whatever we pick.
DEFAULT_THREAD_CAP = 4


def _metrics():
    from ...obs.metrics import default_registry

    return default_registry()


# ----------------------------------------------------------------------
# Process-wide worker pool
# ----------------------------------------------------------------------
class _Pool:
    lock = threading.Lock()
    executor: Optional[ThreadPoolExecutor] = None
    threads: Optional[int] = None  # None = not yet resolved


def _default_threads() -> int:
    env = os.environ.get("REPRO_COMPILE_THREADS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(DEFAULT_THREAD_CAP, os.cpu_count() or 1))


def thread_count() -> int:
    """The configured worker count (resolving the default if unset)."""
    with _Pool.lock:
        if _Pool.threads is None:
            _Pool.threads = _default_threads()
        return _Pool.threads


def configure_threads(threads: Optional[int]) -> int:
    """Set the pool size; ``None`` re-resolves the env/default.

    Returns the resulting count.  An existing pool of a different size
    is shut down and lazily rebuilt — safe between runs (the executor
    is only held during a ``CompiledGraph.run``), and changing the size
    never changes results, because tile bounds do not depend on it.
    """
    with _Pool.lock:
        new = _default_threads() if threads is None else max(1, int(threads))
        if new != _Pool.threads and _Pool.executor is not None:
            _Pool.executor.shutdown(wait=True)
            _Pool.executor = None
        _Pool.threads = new
        _metrics().gauge("compile.threads.pool_size").set(new)
        return new


def clamped_threads(requested: Optional[int], lanes: int = 1) -> int:
    """Thread-group size for one of ``lanes`` replica processes.

    Guards the threads × processes topology against oversubscription:
    with every replica's BLAS pinned to one thread
    (:data:`repro.parallel.BLAS_ENV_VARS`), the compile pool is the
    only per-replica parallelism, so its size is capped at
    ``cpu_count // lanes`` (floor 1).  ``requested=None`` clamps the
    env/default resolution instead.
    """
    cpus = os.cpu_count() or 1
    ceiling = max(1, cpus // max(int(lanes), 1))
    wanted = _default_threads() if requested is None else max(1, int(requested))
    return min(wanted, ceiling)


def shutdown_pool() -> None:
    """Tear down the worker pool (tests / idle reclaim); lazily rebuilt."""
    with _Pool.lock:
        if _Pool.executor is not None:
            _Pool.executor.shutdown(wait=True)
            _Pool.executor = None


def _executor() -> Optional[ThreadPoolExecutor]:
    """The shared executor, or ``None`` when one worker would be it."""
    with _Pool.lock:
        if _Pool.threads is None:
            _Pool.threads = _default_threads()
        if _Pool.threads <= 1:
            return None
        if _Pool.executor is None:
            _Pool.executor = ThreadPoolExecutor(
                max_workers=_Pool.threads,
                thread_name_prefix="repro-compile",
            )
        return _Pool.executor


# ----------------------------------------------------------------------
# GEMM slicing bit-identity probe
# ----------------------------------------------------------------------
#: (m, k, n, dtype.str, bounds) -> probe verdict.  Process-wide: the
#: verdict is a property of the BLAS build and the shapes, not of any
#: particular graph.
_PROBE_CACHE: Dict[Tuple, bool] = {}
_PROBE_LOCK = threading.Lock()


def gemm_slicing_bit_identical(
    m: int, k: int, n: int, dtype, bounds: Tuple[int, ...]
) -> bool:
    """True if row-slicing an ``(m, k) @ (k, n)`` GEMM at ``bounds``
    reproduces the full-size GEMM bit for bit on this machine's BLAS.

    Checked empirically with seeded gaussian operands: if the sliced
    path takes a different BLAS code path (different k-blocking or a
    small-matrix kernel), rounding diverges somewhere in the output
    with near-certainty on continuous random data; two independent
    trials make a false pass astronomically unlikely.  The verdict is
    cached — one probe per distinct GEMM geometry per process.
    """
    dt = np.dtype(dtype)
    key = (int(m), int(k), int(n), dt.str, tuple(bounds))
    with _PROBE_LOCK:
        cached = _PROBE_CACHE.get(key)
    if cached is not None:
        return cached
    verdict = True
    for trial in range(2):
        # Seeded from a *stable* digest of the geometry (Python's hash()
        # is salted per process) so every process probes identical data.
        digest = hashlib.blake2s(
            repr(("repro.compile.probe", key, trial)).encode()
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        a = rng.standard_normal((m, k)).astype(dt, copy=False)
        b = rng.standard_normal((k, n)).astype(dt, copy=False)
        full = a @ b
        sliced = np.empty_like(full)
        for start, stop in zip(bounds[:-1], bounds[1:]):
            np.matmul(a[start:stop], b, out=sliced[start:stop])
        if not np.array_equal(full, sliced):
            verdict = False
            break
    with _PROBE_LOCK:
        _PROBE_CACHE[key] = verdict
    return verdict


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class ThreadedBackend(NumpyBackend):
    """Tile-parallel twin of :class:`~.backend.NumpyBackend`.

    Scratch sizing and output hosting are inherited unchanged — tiles
    slice the very same arena buffers by disjoint row ranges — so the
    planner treats both backends identically and a graph planned for
    one is *not* interchangeable with the other only because the
    lowered closures differ (which is why the compile cache keys on the
    backend name).
    """

    name = "threaded"

    # -- tile dispatch --------------------------------------------------
    def _dispatch(
        self,
        tiles: List[Callable[[dict], None]],
        prime: Optional[Getter] = None,
    ) -> Callable[[dict], None]:
        """One run closure executing ``tiles`` (fixed order, disjoint).

        ``prime`` (the kernel's output getter) is called once on the
        dispatching thread before any tile runs: graph outputs are
        allocated on first use, and that first use must not race across
        tiles.  With a 1-worker configuration the tiles run inline in
        order — the exact sequence the pool would execute, minus the
        handoff — so results are byte-identical across pool sizes by
        construction.
        """
        count = len(tiles)

        def run(env: dict) -> None:
            _metrics().counter("compile.threads.tiles").inc(count)
            if prime is not None:
                prime(env)
            pool = _executor()
            if pool is None:
                for tile in tiles:
                    tile(env)
                return
            futures = [pool.submit(tile, env) for tile in tiles[1:]]
            tiles[0](env)
            for future in futures:
                future.result()

        return run

    def _mark(self, parallel: bool) -> None:
        name = "kernels_parallel" if parallel else "kernels_serial"
        _metrics().counter(f"compile.threads.{name}").inc()

    # -- lowering -------------------------------------------------------
    def lower(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        out: Getter,
        scratch: Dict[str, np.ndarray],
    ) -> Callable[[dict], None]:
        partition = partition_kernel(kernel, program)
        if partition is None or partition.num_tiles <= 1:
            self._mark(parallel=False)
            return super().lower(kernel, program, get, out, scratch)
        root = kernel.ops[0]
        if kernel.kind == "gemm" and root.kind == "conv2d":
            fn = self._lower_conv_tiled(kernel, program, get, scratch, partition)
        elif kernel.kind == "gemm" and root.kind == "matmul":
            fn = self._lower_matmul_tiled(kernel, program, get, out, partition)
        else:
            fn = self._lower_sliced(kernel, program, get, out, scratch, partition)
        if fn is None:  # probe refused the sliced GEMM
            self._mark(parallel=False)
            return super().lower(kernel, program, get, out, scratch)
        self._mark(parallel=True)
        # Both closures are kept and the choice is made per run: with a
        # 1-worker pool the serial (numpy-backend) lowering runs — zero
        # tiling overhead when parallelism is unavailable.  Identical
        # numbers either way: the probe that admitted this kernel
        # certifies row-sliced GEMMs are bit-equal to the full GEMM
        # (shape-dependent, value-independent), and every non-GEMM op is
        # sliced along an axis it never reduces across.
        serial_fn = super().lower(kernel, program, get, out, scratch)

        def run(env: dict) -> None:
            if _executor() is None:
                serial_fn(env)
            else:
                fn(env)

        return run

    # -- GEMM-rooted kernels --------------------------------------------
    def _lower_matmul_tiled(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        out: Getter,
        partition: KernelPartition,
    ) -> Optional[Callable[[dict], None]]:
        root = kernel.ops[0]
        rows, cols = root.shape
        inner = program.graph.op(root.inputs[1]).shape[0]
        if not gemm_slicing_bit_identical(
            rows, inner, cols, root.dtype, partition.bounds
        ):
            return None
        get_x = get(root.inputs[0])
        get_w = get(root.inputs[1])
        chain = self._chain_appliers(kernel.ops[1:], get, channels_last=True)

        tiles = []
        for start, stop in partition.ranges:
            def tile(env: dict, _a=start, _b=stop) -> None:
                target = out(env)[_a:_b]
                np.matmul(get_x(env)[_a:_b], get_w(env), out=target)
                for apply in chain:
                    apply(target, env)

            tiles.append(tile)
        return self._dispatch(tiles, prime=out)

    def _lower_conv_tiled(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        scratch: Dict[str, np.ndarray],
        partition: KernelPartition,
    ) -> Optional[Callable[[dict], None]]:
        """Batch-partitioned conv: pad / im2col / GEMM / chain / pool per
        batch tile, into disjoint slices of the same arena scratch and
        the same published output the serial lowering would use.
        """
        root = kernel.ops[0]
        n, c_in, h, w = self._conv_input_shape(kernel, root)
        kh, kw = self._conv_kernel_hw(root)
        stride = root.params["stride"]
        ph, pw = root.params["padding"]
        c_out, out_h, out_w = root.shape[1], root.shape[2], root.shape[3]
        out_hw = out_h * out_w
        rows, features = n * out_hw, c_in * kh * kw
        if not gemm_slicing_bit_identical(
            rows, features, c_out, root.dtype, partition.scaled(out_hw).bounds
        ):
            return None
        from .. import functional as F

        index = F._im2col_index(c_in, h, w, (kh, kw), stride, (ph, pw))
        get_x = get(root.inputs[0])
        get_w = get(root.inputs[1])
        chain = self._chain_appliers(kernel.ops[1:], get, channels_last=True)
        dt = np.dtype(root.dtype)
        padded = scratch.get("padded")
        if padded is not None:
            padded = padded.view(dt).reshape(n, c_in, h + 2 * ph, w + 2 * pw)
        cols3 = scratch["cols"].view(dt).reshape((n,) + index.shape)
        pool_hw = kernel.pool[0].params["kernel"] if kernel.pool else None
        out_id = kernel.output
        gemm = None
        if "gemm" in scratch:
            gemm = scratch["gemm"].view(dt).reshape(n, out_hw, c_out)

        def make_tile(
            b0: int, b1: int
        ) -> Callable[[dict, np.ndarray, Optional[np.ndarray]], None]:
            nb = b1 - b0

            def tile(
                env: dict, buf3: np.ndarray, pooled: Optional[np.ndarray]
            ) -> None:
                x = get_x(env)[b0:b1]
                if padded is not None:
                    pad = padded[b0:b1]
                    pad.fill(0)
                    pad[:, :, ph:ph + h, pw:pw + w] = x
                    flat = pad.reshape(nb, -1)
                else:
                    flat = x.reshape(nb, -1)
                np.take(flat, index, axis=1, mode="clip", out=cols3[b0:b1])
                cols = cols3[b0:b1].reshape(nb * out_hw, features)
                weight = get_w(env)
                buf = buf3[b0:b1].reshape(nb * out_hw, c_out)
                np.matmul(cols, weight.reshape(c_out, -1).T, out=buf)
                for apply in chain:
                    apply(buf, env)
                if pooled is not None:
                    qh, qw = pool_hw
                    nhwc = buf.reshape(
                        nb, out_h // qh, qh, out_w // qw, qw, c_out
                    )
                    np.max(nhwc, axis=(2, 4), out=pooled[b0:b1])

            return tile

        tile_fns = [make_tile(b0, b1) for b0, b1 in partition.ranges]
        count = len(tile_fns)

        # Hosted output (hosts_output is inherited): both shapes publish
        # the NHWC-strided transpose of one fresh buffer — the same
        # values *and strides* the serial lowering publishes (pooled:
        # the pooling reduction's array; unpooled: the GEMM buffer).
        def run(env: dict) -> None:
            _metrics().counter("compile.threads.tiles").inc(count)
            pooled = None
            if pool_hw is not None:
                buf3 = gemm
                qh, qw = pool_hw
                pooled = np.empty(
                    (n, out_h // qh, out_w // qw, c_out), dtype=dt
                )
                env[out_id] = pooled.transpose(0, 3, 1, 2)
            else:
                buf3 = np.empty((n, out_hw, c_out), dtype=dt)
                env[out_id] = buf3.reshape(n, out_h, out_w, c_out).transpose(
                    0, 3, 1, 2
                )
            pool = _executor()
            if pool is None:
                for tile in tile_fns:
                    tile(env, buf3, pooled)
                return
            futures = [
                pool.submit(tile, env, buf3, pooled) for tile in tile_fns[1:]
            ]
            tile_fns[0](env, buf3, pooled)
            for future in futures:
                future.result()

        return run

    # -- sliceable non-GEMM kernels -------------------------------------
    def _lower_sliced(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        out: Getter,
        scratch: Dict[str, np.ndarray],
        partition: KernelPartition,
    ) -> Optional[Callable[[dict], None]]:
        """Row-tile an elementwise chain or singleton kernel by reusing
        the serial lowering per tile with axis-0-sliced getters.

        Valid because none of these kernels mix data across the leading
        axis: elementwise ops are per-element, pooling/upsample are
        per-sample spatial, and softmax-family kernels only partition
        when their reduction axis is not the leading one (plan layer
        guarantee) — so each output row range depends only on the same
        input row range, computed by the very same numpy calls.
        """
        root = kernel.ops[0]
        primary = root.inputs[0]

        if root.kind == "upsample":
            # The serial lowering bakes the full batch size into its
            # 6-block reshape; tiles need their own slice-shaped twin.
            return self._lower_upsample_tiled(root, get(primary), out, partition)

        tiles = []
        for start, stop in partition.ranges:
            def sliced_get(value_id: int, _a=start, _b=stop) -> Getter:
                getter = get(value_id)
                if value_id != primary:
                    return getter
                return lambda env: getter(env)[_a:_b]

            def sliced_out(env: dict, _a=start, _b=stop) -> np.ndarray:
                return out(env)[_a:_b]

            tiles.append(
                super().lower(kernel, program, sliced_get, sliced_out, scratch)
            )
        return self._dispatch(tiles, prime=out)

    def _lower_upsample_tiled(
        self,
        op,
        get_x: Getter,
        out: Getter,
        partition: KernelPartition,
    ) -> Callable[[dict], None]:
        scale = op.params["scale"]
        _, c, out_h, out_w = op.shape
        h, w = out_h // scale, out_w // scale

        tiles = []
        for start, stop in partition.ranges:
            def tile(env: dict, _a=start, _b=stop) -> None:
                x = get_x(env)[_a:_b]
                blocks = out(env)[_a:_b].reshape(
                    _b - _a, c, h, scale, w, scale
                )
                blocks[...] = x[:, :, :, None, :, None]

            tiles.append(tile)
        return self._dispatch(tiles, prime=out)


register_backend(ThreadedBackend())
