"""Static buffer-reuse planning: liveness analysis over a fused program.

Every kernel output (and every chunk of backend scratch a kernel asks
for) is assigned a byte range inside one preallocated arena.  Two
ranges may overlap only if their live intervals do not — the planner
frees a value's range the moment its last consumer has run and hands
the space to the next allocation (first-fit over an offset-ordered,
coalescing free list).  The compiled executor therefore performs no
large allocations per run at all: one arena, planned once, reused for
every batch of the same geometry.

This subsumes the eager path's ad-hoc scratch pools
(:class:`repro.nn.functional._ScratchPool`) on the compiled path: conv
column matrices and GEMM outputs are just arena intervals with
kernel-local lifetimes.

Alignment is 64 bytes so every planned view is SIMD/BLAS friendly
regardless of dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .fuse import FusedProgram

__all__ = ["Slot", "ArenaPlan", "plan_buffers", "ALIGN"]

ALIGN = 64


@dataclass(frozen=True)
class Slot:
    """One planned byte range: ``[offset, offset + nbytes)``."""

    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass
class ArenaPlan:
    """Assignment of values and kernel scratch into one arena."""

    total_bytes: int = 0
    #: root value id -> arena slot (graph outputs included).
    slots: Dict[int, Slot] = field(default_factory=dict)
    #: (kernel index, tag) -> arena slot for backend scratch.
    scratch: Dict[Tuple[int, str], Slot] = field(default_factory=dict)
    #: root value id -> (first kernel index, last kernel index) live range,
    #: in kernel-sequence coordinates; kept for the property tests.
    intervals: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def peak_naive_bytes(self) -> int:
        """Bytes a no-reuse allocator would have used (telemetry)."""
        return sum(slot.nbytes for slot in self.slots.values()) + sum(
            slot.nbytes for slot in self.scratch.values()
        )


def _aligned(nbytes: int) -> int:
    return (nbytes + ALIGN - 1) // ALIGN * ALIGN


class _FreeList:
    """Offset-ordered free intervals with coalescing, first-fit grabs."""

    def __init__(self) -> None:
        self._free: List[List[int]] = []  # [offset, nbytes], offset-ordered
        self.high_water = 0

    def allocate(self, nbytes: int) -> int:
        nbytes = _aligned(max(nbytes, 1))
        for interval in self._free:
            if interval[1] >= nbytes:
                offset = interval[0]
                interval[0] += nbytes
                interval[1] -= nbytes
                if interval[1] == 0:
                    self._free.remove(interval)
                return offset
        offset = self.high_water
        self.high_water += nbytes
        return offset

    def release(self, offset: int, nbytes: int) -> None:
        nbytes = _aligned(max(nbytes, 1))
        index = 0
        while index < len(self._free) and self._free[index][0] < offset:
            index += 1
        self._free.insert(index, [offset, nbytes])
        # Coalesce with neighbours so big buffers can be re-carved.
        merged: List[List[int]] = []
        for interval in self._free:
            if merged and merged[-1][0] + merged[-1][1] == interval[0]:
                merged[-1][1] += interval[1]
            else:
                merged.append(interval)
        self._free = merged


def plan_buffers(program: FusedProgram, backend) -> ArenaPlan:
    """Liveness-analyze ``program`` and pack it into one arena.

    ``backend`` supplies per-kernel scratch requests via
    ``backend.scratch_requests(kernel, program)`` — scratch lives only
    for its kernel's index, so consecutive kernels share the same bytes.
    """
    graph = program.graph
    kernels = program.kernels
    # Leaves live outside the arena, and so do graph-output roots: the
    # executor gives outputs fresh per-run buffers (they escape to the
    # caller, mirroring eager semantics) instead of copying them out of
    # reused arena space at the end of every run.  Backend-hosted
    # kernel outputs (``backend.hosts_output``) are skipped below for
    # the same reason: the lowering publishes its own freshly-owned
    # array per run.
    external = {op.id for op in graph.ops if op.kind in ("input", "param")}
    external.update(program.resolve(value) for value in graph.output_ids)

    last_use: Dict[int, int] = {}
    for index, kernel in enumerate(kernels):
        for value in kernel.inputs:
            root = program.resolve(value)
            if root in external:
                continue
            last_use[root] = index

    plan = ArenaPlan()
    free = _FreeList()
    #: kernel index -> [(root, slot), ...] to release after it runs.
    expiring: Dict[int, List[Tuple[int, Slot]]] = {}

    for index, kernel in enumerate(kernels):
        root = program.resolve(kernel.output)
        if (
            root not in plan.slots
            and root not in external
            and not backend.hosts_output(kernel, program)
        ):
            op = graph.op(root)
            nbytes = int(np.prod(op.shape, dtype=np.int64)) * np.dtype(op.dtype).itemsize
            slot = Slot(free.allocate(nbytes), _aligned(max(nbytes, 1)))
            plan.slots[root] = slot
            death = last_use.get(root, index)
            plan.intervals[root] = (index, death)
            expiring.setdefault(death, []).append((root, slot))

        for tag, nbytes in backend.scratch_requests(kernel, program):
            slot = Slot(free.allocate(nbytes), _aligned(max(nbytes, 1)))
            plan.scratch[(index, tag)] = slot
            # Scratch dies with its own kernel: release immediately so
            # the very next kernel can reuse the bytes.
            expiring.setdefault(index, []).append((-1, slot))

        for _, slot in expiring.pop(index, ()):
            free.release(slot.offset, slot.nbytes)

    plan.total_bytes = free.high_water
    return plan
