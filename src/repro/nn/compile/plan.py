"""Static buffer-reuse planning: liveness analysis over a fused program.

Every kernel output (and every chunk of backend scratch a kernel asks
for) is assigned a byte range inside one preallocated arena.  Two
ranges may overlap only if their live intervals do not — the planner
frees a value's range the moment its last consumer has run and hands
the space to the next allocation (first-fit over an offset-ordered,
coalescing free list).  The compiled executor therefore performs no
large allocations per run at all: one arena, planned once, reused for
every batch of the same geometry.

This subsumes the eager path's ad-hoc scratch pools
(:class:`repro.nn.functional._ScratchPool`) on the compiled path: conv
column matrices and GEMM outputs are just arena intervals with
kernel-local lifetimes.

Alignment is 64 bytes so every planned view is SIMD/BLAS friendly
regardless of dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .fuse import FusedProgram, Kernel

__all__ = [
    "Slot",
    "ArenaPlan",
    "plan_buffers",
    "ALIGN",
    "KernelPartition",
    "partition_rows",
    "partition_kernel",
    "plan_partitions",
    "MIN_TILE_WORK",
    "MAX_TILES",
]

ALIGN = 64

#: Minimum scalar-operation work (a flop proxy) one tile must carry
#: before a kernel is split at all — below this the dispatch overhead
#: of even a second tile exceeds the compute it would offload, so small
#: kernels stay serial by plan, not by runtime heuristic.
MIN_TILE_WORK = 1 << 17

#: Fixed tile-count ceiling.  The partition is part of the *plan*, not
#: of the thread pool: the same bounds are produced whatever the pool
#: size, so all multi-worker runs execute identical tile sequences
#: (determinism) and a pool larger than MAX_TILES simply leaves workers
#: idle rather than changing the numbers.
MAX_TILES = 16


@dataclass(frozen=True)
class Slot:
    """One planned byte range: ``[offset, offset + nbytes)``."""

    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass
class ArenaPlan:
    """Assignment of values and kernel scratch into one arena."""

    total_bytes: int = 0
    #: root value id -> arena slot (graph outputs included).
    slots: Dict[int, Slot] = field(default_factory=dict)
    #: (kernel index, tag) -> arena slot for backend scratch.
    scratch: Dict[Tuple[int, str], Slot] = field(default_factory=dict)
    #: root value id -> (first kernel index, last kernel index) live range,
    #: in kernel-sequence coordinates; kept for the property tests.
    intervals: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def peak_naive_bytes(self) -> int:
        """Bytes a no-reuse allocator would have used (telemetry)."""
        return sum(slot.nbytes for slot in self.slots.values()) + sum(
            slot.nbytes for slot in self.scratch.values()
        )


def _aligned(nbytes: int) -> int:
    return (nbytes + ALIGN - 1) // ALIGN * ALIGN


class _FreeList:
    """Offset-ordered free intervals with coalescing, first-fit grabs."""

    def __init__(self) -> None:
        self._free: List[List[int]] = []  # [offset, nbytes], offset-ordered
        self.high_water = 0

    def allocate(self, nbytes: int) -> int:
        nbytes = _aligned(max(nbytes, 1))
        for interval in self._free:
            if interval[1] >= nbytes:
                offset = interval[0]
                interval[0] += nbytes
                interval[1] -= nbytes
                if interval[1] == 0:
                    self._free.remove(interval)
                return offset
        offset = self.high_water
        self.high_water += nbytes
        return offset

    def release(self, offset: int, nbytes: int) -> None:
        nbytes = _aligned(max(nbytes, 1))
        index = 0
        while index < len(self._free) and self._free[index][0] < offset:
            index += 1
        self._free.insert(index, [offset, nbytes])
        # Coalesce with neighbours so big buffers can be re-carved.
        merged: List[List[int]] = []
        for interval in self._free:
            if merged and merged[-1][0] + merged[-1][1] == interval[0]:
                merged[-1][1] += interval[1]
            else:
                merged.append(interval)
        self._free = merged


def plan_buffers(program: FusedProgram, backend) -> ArenaPlan:
    """Liveness-analyze ``program`` and pack it into one arena.

    ``backend`` supplies per-kernel scratch requests via
    ``backend.scratch_requests(kernel, program)`` — scratch lives only
    for its kernel's index, so consecutive kernels share the same bytes.
    """
    graph = program.graph
    kernels = program.kernels
    # Leaves live outside the arena, and so do graph-output roots: the
    # executor gives outputs fresh per-run buffers (they escape to the
    # caller, mirroring eager semantics) instead of copying them out of
    # reused arena space at the end of every run.  Backend-hosted
    # kernel outputs (``backend.hosts_output``) are skipped below for
    # the same reason: the lowering publishes its own freshly-owned
    # array per run.
    external = {op.id for op in graph.ops if op.kind in ("input", "param")}
    external.update(program.resolve(value) for value in graph.output_ids)

    last_use: Dict[int, int] = {}
    for index, kernel in enumerate(kernels):
        for value in kernel.inputs:
            root = program.resolve(value)
            if root in external:
                continue
            last_use[root] = index

    plan = ArenaPlan()
    free = _FreeList()
    #: kernel index -> [(root, slot), ...] to release after it runs.
    expiring: Dict[int, List[Tuple[int, Slot]]] = {}

    for index, kernel in enumerate(kernels):
        root = program.resolve(kernel.output)
        if (
            root not in plan.slots
            and root not in external
            and not backend.hosts_output(kernel, program)
        ):
            op = graph.op(root)
            nbytes = int(np.prod(op.shape, dtype=np.int64)) * np.dtype(op.dtype).itemsize
            slot = Slot(free.allocate(nbytes), _aligned(max(nbytes, 1)))
            plan.slots[root] = slot
            death = last_use.get(root, index)
            plan.intervals[root] = (index, death)
            expiring.setdefault(death, []).append((root, slot))

        for tag, nbytes in backend.scratch_requests(kernel, program):
            slot = Slot(free.allocate(nbytes), _aligned(max(nbytes, 1)))
            plan.scratch[(index, tag)] = slot
            # Scratch dies with its own kernel: release immediately so
            # the very next kernel can reuse the bytes.
            expiring.setdefault(index, []).append((-1, slot))

        for _, slot in expiring.pop(index, ()):
            free.release(slot.offset, slot.nbytes)

    plan.total_bytes = free.high_water
    return plan


# ----------------------------------------------------------------------
# Row partitioning (threaded backend metadata)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelPartition:
    """Fixed-order row partition of one kernel's leading axis.

    ``bounds`` is a monotone tuple ``(0, ..., axis_size)``; tile ``i``
    covers rows ``[bounds[i], bounds[i+1])``.  Tiles are disjoint and
    cover the axis exactly once (pinned by a hypothesis property test),
    so tile writes into one shared output buffer never overlap and the
    union of tiles is the whole kernel.
    """

    axis_size: int
    bounds: Tuple[int, ...]

    @property
    def num_tiles(self) -> int:
        return len(self.bounds) - 1

    @property
    def ranges(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(zip(self.bounds[:-1], self.bounds[1:]))

    def scaled(self, factor: int) -> "KernelPartition":
        """The same partition with every bound multiplied by ``factor``.

        Used to convert a conv kernel's batch partition into GEMM-row
        coordinates (``rows = batch * out_h * out_w``).
        """
        return KernelPartition(
            axis_size=self.axis_size * factor,
            bounds=tuple(b * factor for b in self.bounds),
        )


def partition_rows(
    axis_size: int,
    work_per_row: int,
    min_tile_work: int = MIN_TILE_WORK,
    max_tiles: int = MAX_TILES,
) -> KernelPartition:
    """Deterministically partition ``axis_size`` rows into tiles.

    The tile count depends only on the kernel's total work and the two
    module constants — never on the thread count — and the bounds are
    the canonical even integer split, so every process planning the
    same graph produces byte-identical partitions.
    """
    if axis_size <= 0:
        return KernelPartition(axis_size=max(axis_size, 0), bounds=(0, max(axis_size, 0)))
    total_work = axis_size * max(work_per_row, 1)
    tiles = min(total_work // max(min_tile_work, 1), max_tiles, axis_size)
    tiles = max(int(tiles), 1)
    bounds = tuple(i * axis_size // tiles for i in range(tiles + 1))
    return KernelPartition(axis_size=axis_size, bounds=bounds)


def _kernel_row_work(kernel: Kernel, program: FusedProgram) -> Tuple[int, int]:
    """``(axis_size, work_per_row)`` for partitioning one kernel.

    The leading axis is the batch/rows dimension of the kernel's output;
    work per row is a scalar-operation (flop) proxy — GEMM rows weigh
    their inner dimension, elementwise rows weigh their chain length —
    so GEMM-heavy kernels split readily while cheap elementwise kernels
    stay serial unless they are genuinely large.
    """
    root = kernel.ops[0]
    if not root.shape:
        return 0, 0
    axis = int(root.shape[0])
    per_row = int(np.prod(root.shape[1:], dtype=np.int64))
    if root.kind == "conv2d":
        c_in, _, _ = root.params["input_chw"]
        kh, kw = root.params["kernel"]
        per_row *= c_in * kh * kw
    elif root.kind == "matmul":
        weight = program.graph.op(root.inputs[1])
        per_row *= int(weight.shape[0])
    else:
        per_row *= len(kernel.ops) + len(kernel.pool)
    return axis, per_row


def partition_kernel(kernel: Kernel, program: FusedProgram) -> Optional[KernelPartition]:
    """The planned partition for ``kernel``, or ``None`` if it must stay
    serial for correctness (not merely for size).

    Softmax-family kernels reduce along a recorded axis; they partition
    only when that axis is not the leading one, so every reduction stays
    entirely inside a single tile (no cross-tile reduction trees are
    ever needed — fan-in order is the serial order by construction).
    """
    root = kernel.ops[0]
    if root.kind in ("softmax", "log_softmax"):
        axis = root.params["axis"] % len(root.shape)
        if axis == 0:
            return None
    axis_size, per_row = _kernel_row_work(kernel, program)
    if axis_size <= 0:
        return None
    return partition_rows(axis_size, per_row)


def plan_partitions(program: FusedProgram) -> Dict[int, KernelPartition]:
    """Partition metadata for every kernel of ``program``.

    Keyed by kernel index.  Kernels that must stay serial are simply
    absent; kernels present with ``num_tiles == 1`` fell under the
    min-work threshold.
    """
    partitions: Dict[int, KernelPartition] = {}
    for index, kernel in enumerate(program.kernels):
        partition = partition_kernel(kernel, program)
        if partition is not None:
            partitions[index] = partition
    return partitions
