"""Arena-hosted execution of a fused, planned graph.

:class:`CompiledGraph` owns one byte arena sized by the planner and a
list of backend-lowered kernel closures.  A run is: resolve leaves
(inputs + live parameter bindings) into an environment dict, execute
the kernels in order (graph outputs are produced into fresh buffers or
fresh views as each kernel runs — they escape to the caller, like
eager results), return the outputs.
Everything intermediate lives in the arena at planner-assigned offsets,
so steady-state runs perform no large allocations beyond the outputs
themselves.

:meth:`CompiledGraph.release` drops the arena (and the kernel closures
viewing it) so an idle server can return the memory; the next run
rebuilds both from the retained plan.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .backend import Backend
from .fuse import FusedProgram
from .ir import Graph
from .plan import ArenaPlan

__all__ = ["CompiledGraph"]


class CompiledGraph:
    """One (graph, plan, backend) triple, ready to run repeatedly."""

    def __init__(
        self,
        program: FusedProgram,
        plan: ArenaPlan,
        backend: Backend,
    ) -> None:
        self.program = program
        self.graph: Graph = program.graph
        self.plan = plan
        self.backend = backend
        self._arena: Optional[np.ndarray] = None
        self._fns: Optional[List[Callable[[dict], None]]] = None
        self._static_views: Dict[int, np.ndarray] = {}
        self._external = {
            op.id for op in self.graph.ops if op.kind in ("input", "param")
        }

    # ------------------------------------------------------------------
    # Introspection (telemetry / tests)
    # ------------------------------------------------------------------
    @property
    def arena_nbytes(self) -> int:
        return self.plan.total_bytes

    @property
    def kernel_count(self) -> int:
        return len(self.program.kernels)

    @property
    def ops_fused(self) -> int:
        return self.program.ops_fused

    def release(self) -> int:
        """Drop the arena; returns the bytes freed.  Rebuilt lazily."""
        freed = 0 if self._arena is None else self._arena.nbytes
        self._arena = None
        self._fns = None
        self._static_views = {}
        return freed

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _view(self, arena: np.ndarray, offset: int, nbytes: int) -> np.ndarray:
        return arena[offset:offset + nbytes]

    def _materialize(self) -> None:
        graph, program, plan = self.graph, self.program, self.plan
        arena = np.empty((plan.total_bytes,), dtype=np.uint8)
        views: Dict[int, np.ndarray] = {}
        for root, slot in plan.slots.items():
            op = graph.op(root)
            nbytes = int(np.prod(op.shape, dtype=np.int64)) * np.dtype(op.dtype).itemsize
            views[root] = (
                self._view(arena, slot.offset, nbytes)
                .view(np.dtype(op.dtype))
                .reshape(op.shape)
            )
        self._static_views = views

        def make_getter(value_id: int) -> Callable[[dict], np.ndarray]:
            root = program.resolve(value_id)
            shape = graph.op(value_id).shape
            static = views.get(root)
            if static is not None:
                view = static if static.shape == shape else static.reshape(shape)
                return lambda env, _v=view: _v
            if graph.op(root).shape == shape:
                return lambda env, _r=root: env[_r]
            return lambda env, _r=root, _s=shape: env[_r].reshape(_s)

        def make_out(root: int) -> Callable[[dict], np.ndarray]:
            # Kernel-output getter: arena view for planned intermediates;
            # graph outputs (external to the arena) are allocated fresh
            # on first use and published into the run environment, so
            # they escape to the caller like eager results.
            static = views.get(root)
            if static is not None:
                return lambda env, _v=static: _v
            op = graph.op(root)
            shape, dt = op.shape, np.dtype(op.dtype)

            def getter(env: dict, _r=root, _s=shape, _d=dt) -> np.ndarray:
                buf = env.get(_r)
                if buf is None:
                    buf = np.empty(_s, dtype=_d)
                    env[_r] = buf
                return buf

            return getter

        fns: List[Callable[[dict], None]] = []
        for index, kernel in enumerate(program.kernels):
            scratch: Dict[str, np.ndarray] = {}
            for tag, nbytes in self.backend.scratch_requests(kernel, program):
                slot = plan.scratch[(index, tag)]
                scratch[tag] = self._view(arena, slot.offset, nbytes)
            fns.append(
                self.backend.lower(
                    kernel, program, make_getter, make_out(kernel.output), scratch
                )
            )
        self._arena = arena
        self._fns = fns

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, *inputs: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Execute the graph; returns one fresh array per graph output."""
        graph = self.graph
        if len(inputs) != len(graph.input_ids):
            raise ValueError(
                f"graph takes {len(graph.input_ids)} inputs, got {len(inputs)}"
            )
        if self._fns is None:
            self._materialize()
        env: dict = {}
        for value_id, array in zip(graph.input_ids, inputs):
            op = graph.op(value_id)
            if tuple(array.shape) != op.shape:
                raise ValueError(
                    f"input %{value_id} expects shape {op.shape}, got {array.shape}"
                )
            env[value_id] = np.ascontiguousarray(array, dtype=np.dtype(op.dtype))
        for value_id, binding in graph.bindings.items():
            env[value_id] = binding()
        for fn in self._fns:
            fn(env)
        results = []
        for value_id in graph.output_ids:
            root = self.program.resolve(value_id)
            out = env[root] if root in env else self._static_views[root]
            shape = graph.op(value_id).shape
            if out.shape != shape:
                out = out.reshape(shape)
            if root in self._external:
                # The output aliases a caller-owned leaf; hand back a copy.
                out = out.copy()
            results.append(out)
        return tuple(results)
