"""Structural tracing: lower a module tree into a :class:`~.ir.Graph`.

Tracing walks the module structure (not a recorded execution), emitting
one or more :class:`~.ir.LazyOp` nodes per layer.  Dispatch is by
*exact* type through a registry — a subclass with an overridden
``forward`` would silently mistrace under ``isinstance`` dispatch, so
unknown types (including subclasses of known ones) raise
:class:`~.ir.UnsupportedOpError` and the caller falls back to eager.

New layer types plug in with :func:`register_tracer`; model classes
outside :mod:`repro.nn` (e.g. :class:`repro.core.cnn.WaferCNN`)
register their own tracers at import time.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple, Type

import numpy as np

from ..layers.activations import LeakyReLU, LogSoftmax, ReLU, Sigmoid, Softmax, Tanh
from ..layers.base import Module
from ..layers.container import Sequential
from ..layers.conv import Conv2D
from ..layers.dense import Dense, Flatten
from ..layers.pooling import AvgPool2D, MaxPool2D, UpSample2D
from ..layers.regularization import BatchNorm1D, BatchNorm2D, Dropout
from .ir import Graph, GraphBuilder, UnsupportedOpError

__all__ = ["register_tracer", "trace_call", "trace_module"]

#: ``tracer(module, builder, x_id) -> output value id``
TracerFn = Callable[[Module, GraphBuilder, int], int]

_TRACERS: Dict[Type[Module], TracerFn] = {}


def register_tracer(module_type: Type[Module]):
    """Class decorator registering a tracer for an exact module type."""

    def decorator(fn: TracerFn) -> TracerFn:
        _TRACERS[module_type] = fn
        return fn

    return decorator


def trace_call(module: Module, builder: GraphBuilder, x_id: int) -> int:
    """Emit the ops of one module call; returns the output value id."""
    if module.__dict__.get("_hooks"):
        # Timing hooks need the real per-layer __call__ boundaries;
        # compiling away the layers would silence them.
        raise UnsupportedOpError(
            f"{type(module).__name__} carries timing hooks; profiling "
            "requires the eager path"
        )
    tracer = _TRACERS.get(type(module))
    if tracer is None:
        raise UnsupportedOpError(f"no tracer registered for {type(module).__name__}")
    return tracer(module, builder, x_id)


def trace_module(module: Module, input_shape: Sequence[int], dtype) -> Graph:
    """Whole-graph convenience: one input, one traced call, one output."""
    builder = GraphBuilder()
    x_id = builder.add_input(tuple(input_shape), dtype)
    out = trace_call(module, builder, x_id)
    builder.mark_output(out)
    return builder.graph


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _meta(builder: GraphBuilder, value_id: int) -> Tuple[Tuple[int, ...], np.dtype]:
    op = builder.graph.op(value_id)
    return op.shape, np.dtype(op.dtype)


def _param_leaf(builder: GraphBuilder, tensor, source: str) -> int:
    """Leaf bound to a live :class:`Parameter` — re-read every run."""
    return builder.add_param(
        lambda: tensor.data, tuple(tensor.shape), tensor.dtype, source=source
    )


def _name_of(module: Module) -> str:
    return type(module).__name__


# ----------------------------------------------------------------------
# Containers
# ----------------------------------------------------------------------
@register_tracer(Sequential)
def _trace_sequential(module: Sequential, builder: GraphBuilder, x_id: int) -> int:
    for layer in module:
        x_id = trace_call(layer, builder, x_id)
    return x_id


# ----------------------------------------------------------------------
# Convolution / dense
# ----------------------------------------------------------------------
@register_tracer(Conv2D)
def _trace_conv2d(module: Conv2D, builder: GraphBuilder, x_id: int) -> int:
    shape, dtype = _meta(builder, x_id)
    if len(shape) != 4 or shape[1] != module.in_channels:
        raise UnsupportedOpError(
            f"Conv2D expects (N, {module.in_channels}, H, W), traced input is {shape}"
        )
    n, _, h, w = shape
    out_h, out_w = module.output_shape((h, w))
    if out_h < 1 or out_w < 1:
        raise UnsupportedOpError(f"Conv2D output collapses to ({out_h}, {out_w})")
    if np.dtype(module.weight.dtype) != dtype:
        raise UnsupportedOpError(
            f"Conv2D weight dtype {module.weight.dtype} != input dtype {dtype}"
        )
    w_id = _param_leaf(builder, module.weight, f"{_name_of(module)}.weight")
    out = builder.add_op(
        "conv2d",
        (x_id, w_id),
        (n, module.out_channels, out_h, out_w),
        dtype,
        params={
            "stride": module.stride,
            "padding": module.padding,
            "kernel": module.kernel_size,
            "input_chw": (module.in_channels, h, w),
        },
        source=_name_of(module),
    )
    if module.bias is not None:
        b_id = _param_leaf(builder, module.bias, f"{_name_of(module)}.bias")
        out = builder.add_op(
            "bias_add",
            (out, b_id),
            (n, module.out_channels, out_h, out_w),
            dtype,
            params={"channel_axis": 1},
            source=_name_of(module),
        )
    return out


@register_tracer(Dense)
def _trace_dense(module: Dense, builder: GraphBuilder, x_id: int) -> int:
    shape, dtype = _meta(builder, x_id)
    if len(shape) != 2 or shape[-1] != module.in_features:
        raise UnsupportedOpError(
            f"Dense expects (N, {module.in_features}), traced input is {shape}"
        )
    if np.dtype(module.weight.dtype) != dtype:
        raise UnsupportedOpError(
            f"Dense weight dtype {module.weight.dtype} != input dtype {dtype}"
        )
    w_id = _param_leaf(builder, module.weight, f"{_name_of(module)}.weight")
    out = builder.add_op(
        "matmul",
        (x_id, w_id),
        (shape[0], module.out_features),
        dtype,
        source=_name_of(module),
    )
    if module.bias is not None:
        b_id = _param_leaf(builder, module.bias, f"{_name_of(module)}.bias")
        out = builder.add_op(
            "bias_add",
            (out, b_id),
            (shape[0], module.out_features),
            dtype,
            params={"channel_axis": -1},
            source=_name_of(module),
        )
    return out


@register_tracer(Flatten)
def _trace_flatten(module: Flatten, builder: GraphBuilder, x_id: int) -> int:
    shape, dtype = _meta(builder, x_id)
    flat = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    return builder.add_op(
        "reshape", (x_id,), (shape[0], flat), dtype, source=_name_of(module)
    )


# ----------------------------------------------------------------------
# Elementwise activations
# ----------------------------------------------------------------------
def _elementwise(kind: str):
    def tracer(module: Module, builder: GraphBuilder, x_id: int) -> int:
        shape, dtype = _meta(builder, x_id)
        params = {}
        if kind == "leaky_relu":
            params["negative_slope"] = module.negative_slope
        return builder.add_op(
            kind, (x_id,), shape, dtype, params=params, source=_name_of(module)
        )

    return tracer


register_tracer(ReLU)(_elementwise("relu"))
register_tracer(LeakyReLU)(_elementwise("leaky_relu"))
register_tracer(Sigmoid)(_elementwise("sigmoid"))
register_tracer(Tanh)(_elementwise("tanh"))


def _axis_op(kind: str):
    def tracer(module: Module, builder: GraphBuilder, x_id: int) -> int:
        shape, dtype = _meta(builder, x_id)
        return builder.add_op(
            kind, (x_id,), shape, dtype,
            params={"axis": module.axis}, source=_name_of(module),
        )

    return tracer


register_tracer(Softmax)(_axis_op("softmax"))
register_tracer(LogSoftmax)(_axis_op("log_softmax"))


# ----------------------------------------------------------------------
# Pooling / upsampling
# ----------------------------------------------------------------------
def _pool(kind: str):
    def tracer(module: Module, builder: GraphBuilder, x_id: int) -> int:
        shape, dtype = _meta(builder, x_id)
        if len(shape) != 4:
            raise UnsupportedOpError(f"{kind} expects NCHW input, traced {shape}")
        n, c, h, w = shape
        kh, kw = module.kernel_size
        sh, sw = module.stride
        out_h = (h - kh) // sh + 1
        out_w = (w - kw) // sw + 1
        if out_h < 1 or out_w < 1:
            raise UnsupportedOpError(f"{kind} output collapses on input {shape}")
        return builder.add_op(
            kind, (x_id,), (n, c, out_h, out_w), dtype,
            params={"kernel": (kh, kw), "stride": (sh, sw)},
            source=_name_of(module),
        )

    return tracer


register_tracer(MaxPool2D)(_pool("maxpool"))
register_tracer(AvgPool2D)(_pool("avgpool"))


@register_tracer(UpSample2D)
def _trace_upsample(module: UpSample2D, builder: GraphBuilder, x_id: int) -> int:
    shape, dtype = _meta(builder, x_id)
    if len(shape) != 4:
        raise UnsupportedOpError(f"UpSample2D expects NCHW input, traced {shape}")
    n, c, h, w = shape
    return builder.add_op(
        "upsample", (x_id,), (n, c, h * module.scale, w * module.scale), dtype,
        params={"scale": module.scale}, source=_name_of(module),
    )


# ----------------------------------------------------------------------
# Regularization
# ----------------------------------------------------------------------
@register_tracer(Dropout)
def _trace_dropout(module: Dropout, builder: GraphBuilder, x_id: int) -> int:
    if module.training and module.rate > 0.0:
        raise UnsupportedOpError("Dropout in training mode is stochastic")
    return x_id  # identity in eval mode


def _trace_batchnorm(module, builder: GraphBuilder, x_id: int, ndim: int) -> int:
    if module.training:
        raise UnsupportedOpError("BatchNorm in training mode updates running stats")
    shape, dtype = _meta(builder, x_id)
    if len(shape) != ndim or shape[1] != module.num_features:
        raise UnsupportedOpError(
            f"{_name_of(module)} expects {ndim}-D input with "
            f"{module.num_features} channels, traced {shape}"
        )
    broadcast = (
        (1, module.num_features, 1, 1) if ndim == 4 else (1, module.num_features)
    )

    # Mirrors the eager eval fast path bit for bit: fold running stats
    # and the affine transform into one per-feature scale/shift.  The
    # bindings re-read the module every run, so stat updates between
    # runs are picked up without recompiling.
    def scale() -> np.ndarray:
        var = module._buffers["running_var"]
        return module.gamma.data * (var + module.eps) ** -0.5

    def shift() -> np.ndarray:
        return module.beta.data - module._buffers["running_mean"] * scale()

    feat_dtype = np.result_type(module.gamma.dtype, module._buffers["running_var"].dtype)
    s_id = builder.add_param(
        scale, (module.num_features,), feat_dtype, source=f"{_name_of(module)}.scale"
    )
    t_id = builder.add_param(
        shift, (module.num_features,), feat_dtype, source=f"{_name_of(module)}.shift"
    )
    return builder.add_op(
        "affine", (x_id, s_id, t_id), shape, np.result_type(dtype, feat_dtype),
        params={"broadcast": broadcast}, source=_name_of(module),
    )


register_tracer(BatchNorm2D)(
    lambda module, builder, x_id: _trace_batchnorm(module, builder, x_id, 4)
)
register_tracer(BatchNorm1D)(
    lambda module, builder, x_id: _trace_batchnorm(module, builder, x_id, 2)
)
