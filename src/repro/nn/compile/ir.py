"""The lazy intermediate representation: :class:`LazyOp` graphs.

A :class:`Graph` is a flat, topologically ordered list of
:class:`LazyOp` nodes.  Each node records *what* would be computed —
op kind, input value ids, geometry parameters, output shape and dtype,
and a ``source`` ref naming the layer it came from — without computing
anything.  Tracing (:mod:`repro.nn.compile.trace`) builds the graph
from a module tree; lowering turns it into fused kernels
(:mod:`repro.nn.compile.fuse`), an arena plan
(:mod:`repro.nn.compile.plan`), and finally backend callables
(:mod:`repro.nn.compile.backend`).

Value ids are just op ids: every op produces exactly one value.  Leaf
ops (``input`` / ``param``) carry no inputs; ``param`` leaves hold a
zero-argument *binding* callable evaluated at run time, so weight
updates (in-place optimizer steps, ``load_state_dict``) and
batch-norm running-stat changes are picked up without recompiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "LazyOp",
    "Graph",
    "GraphBuilder",
    "UnsupportedOpError",
    "ELEMENTWISE_KINDS",
    "PRODUCER_KINDS",
]

#: Elementwise op kinds: one value in, same-shape value out, no
#: cross-element data flow.  These are the fusion pass's free riders —
#: any chain of them can run in place on a producer's output buffer.
ELEMENTWISE_KINDS = frozenset(
    {"bias_add", "relu", "leaky_relu", "sigmoid", "tanh", "affine"}
)

#: Kinds that anchor a fused kernel (a GEMM whose output an elementwise
#: chain — and for conv, a trailing max-pool — can be folded into).
PRODUCER_KINDS = frozenset({"conv2d", "matmul"})


class UnsupportedOpError(Exception):
    """Raised when a module or op has no lazy lowering.

    The compile entry points catch this and fall back to the eager
    path — an unsupported model is a missed optimization, never an
    error surfaced to callers.
    """


@dataclass(frozen=True)
class LazyOp:
    """One node of the lazy graph (op kind + geometry, no data)."""

    id: int
    kind: str
    inputs: Tuple[int, ...]
    shape: Tuple[int, ...]
    dtype: str
    params: Dict[str, object] = field(default_factory=dict)
    source: str = ""


class Graph:
    """A topologically ordered op list with run-time param bindings."""

    def __init__(self) -> None:
        self.ops: List[LazyOp] = []
        self.bindings: Dict[int, Callable[[], np.ndarray]] = {}
        self.input_ids: List[int] = []
        self.output_ids: List[int] = []

    def op(self, value_id: int) -> LazyOp:
        return self.ops[value_id]

    def consumers(self) -> Dict[int, List[int]]:
        """Map of value id -> ids of ops that consume it."""
        result: Dict[int, List[int]] = {op.id: [] for op in self.ops}
        for op in self.ops:
            for value in op.inputs:
                result[value].append(op.id)
        return result

    def __len__(self) -> int:
        return len(self.ops)

    def summary(self) -> str:
        lines = []
        for op in self.ops:
            args = ", ".join(f"%{i}" for i in op.inputs)
            lines.append(
                f"%{op.id} = {op.kind}({args}) -> {op.shape} {op.dtype}"
                + (f"  # {op.source}" if op.source else "")
            )
        outs = ", ".join(f"%{i}" for i in self.output_ids)
        lines.append(f"return {outs}")
        return "\n".join(lines)


class GraphBuilder:
    """Append-only builder enforcing shape/dtype bookkeeping per op."""

    def __init__(self) -> None:
        self.graph = Graph()

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def add_input(self, shape: Sequence[int], dtype) -> int:
        value = self._append("input", (), tuple(shape), dtype)
        self.graph.input_ids.append(value)
        return value

    def add_param(
        self,
        binding: Callable[[], np.ndarray],
        shape: Sequence[int],
        dtype,
        source: str = "",
    ) -> int:
        """A leaf whose array is fetched by calling ``binding`` per run."""
        value = self._append("param", (), tuple(shape), dtype, source=source)
        self.graph.bindings[value] = binding
        return value

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def add_op(
        self,
        kind: str,
        inputs: Sequence[int],
        shape: Sequence[int],
        dtype,
        params: Optional[Dict[str, object]] = None,
        source: str = "",
    ) -> int:
        for value in inputs:
            if not 0 <= value < len(self.graph.ops):
                raise ValueError(f"unknown input value %{value} for {kind}")
        return self._append(
            kind, tuple(inputs), tuple(shape), dtype, params=params, source=source
        )

    def mark_output(self, value_id: int) -> None:
        self.graph.output_ids.append(value_id)

    def _append(
        self,
        kind: str,
        inputs: Tuple[int, ...],
        shape: Tuple[int, ...],
        dtype,
        params: Optional[Dict[str, object]] = None,
        source: str = "",
    ) -> int:
        op = LazyOp(
            id=len(self.graph.ops),
            kind=kind,
            inputs=inputs,
            shape=shape,
            dtype=np.dtype(dtype).str,
            params=dict(params or {}),
            source=source,
        )
        self.graph.ops.append(op)
        return op.id
