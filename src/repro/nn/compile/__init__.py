"""``repro.nn.compile`` — a lazy-graph compiler over the numpy backend.

The pipeline::

    model ──trace──▶ Graph (LazyOp IR)
          ──fuse───▶ FusedProgram (GEMM+elementwise[+pool] kernels)
          ──plan───▶ ArenaPlan (liveness-packed buffer offsets)
          ──lower──▶ CompiledGraph (backend closures over one arena)

Entry points:

* ``nn.compile(model)`` — the module itself is callable; returns a
  :class:`CompiledModule` whose runs are bit-identical to eager
  ``inference_mode`` and which falls back to eager for anything the
  compiler does not cover;
* :func:`compiled_for` — process-local cached wrapper, used by the
  model predict paths and the serving engine;
* :func:`register_tracer` / :func:`register_graph_factory` /
  :func:`register_backend` — the three extension seams (new layers,
  new whole-model graphs, new execution backends).

Smoke check: ``python -m repro.nn.compile.smoke``.
"""

from __future__ import annotations

import sys
import types

from .api import (
    BACKEND_ENV_VAR,
    CompiledModule,
    active_backend_info,
    compile_module,
    compiled_for,
    default_backend_name,
    eager_only,
    is_enabled,
    register_graph_factory,
    release_compiled,
    resolve_backend_name,
    set_default_backend,
    set_enabled,
)
from .backend import (
    Backend,
    NumpyBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .executor import CompiledGraph
from .fuse import FusedProgram, Kernel, fuse_graph
from .ir import Graph, GraphBuilder, LazyOp, UnsupportedOpError
from .plan import (
    ArenaPlan,
    KernelPartition,
    Slot,
    partition_rows,
    plan_buffers,
    plan_partitions,
)
from .threaded import ThreadedBackend, configure_threads, thread_count
from .trace import register_tracer, trace_call, trace_module

__all__ = [
    "CompiledModule",
    "compile_module",
    "compiled_for",
    "eager_only",
    "is_enabled",
    "set_enabled",
    "release_compiled",
    "register_graph_factory",
    "register_tracer",
    "trace_call",
    "trace_module",
    "Graph",
    "GraphBuilder",
    "LazyOp",
    "UnsupportedOpError",
    "FusedProgram",
    "Kernel",
    "fuse_graph",
    "ArenaPlan",
    "Slot",
    "plan_buffers",
    "Backend",
    "NumpyBackend",
    "ThreadedBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "CompiledGraph",
    "KernelPartition",
    "partition_rows",
    "plan_partitions",
    "configure_threads",
    "thread_count",
    "resolve_backend_name",
    "set_default_backend",
    "default_backend_name",
    "active_backend_info",
    "BACKEND_ENV_VAR",
]


class _CallableModule(types.ModuleType):
    """Makes ``nn.compile(model)`` work while keeping this a real module
    (so ``python -m repro.nn.compile.smoke`` and submodule imports still
    resolve normally)."""

    def __call__(self, model, backend=None) -> CompiledModule:
        return compile_module(model, backend=backend)


sys.modules[__name__].__class__ = _CallableModule
