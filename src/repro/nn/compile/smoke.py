"""Compiler smoke check: ``python -m repro.nn.compile.smoke``.

Builds a small Table-I-shaped CNN and a SelectiveNet, compiles both,
and asserts the compiled outputs are **bit-identical** to the eager
``inference_mode`` outputs.  Prints a one-line JSON summary and exits
nonzero on any mismatch, so CI (``scripts/check.sh``) can gate on it in
a few seconds.

``--backend NAME`` selects the compile backend (default ``numpy``);
``--backend threaded`` additionally checks every pool size in
``--threads`` (default ``1,4``) against the same eager reference, so
the CI gate covers both the serial degeneration and a real pool.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np


def _check(model_name: str, compiled, x, reference_outputs) -> dict:
    out = compiled.try_run(x)
    ok = out is not None and all(
        np.array_equal(got, want) for got, want in zip(out, reference_outputs)
    )
    graph = next(iter(compiled.graphs.values()), None)
    return {
        "model": model_name,
        "compiled": out is not None,
        "bit_identical": bool(ok),
        "kernels": graph.kernel_count if graph else 0,
        "ops_fused": graph.ops_fused if graph else 0,
        "arena_bytes": graph.arena_nbytes if graph else 0,
    }


def run_smoke(backend: Optional[str] = None, threads: Sequence[int] = (1, 4)) -> dict:
    from ...core.cnn import BackboneConfig, WaferCNN
    from ...core.selective import SelectiveNet
    from . import (
        compiled_for,
        configure_threads,
        eager_only,
        resolve_backend_name,
        thread_count,
    )

    backend = resolve_backend_name(backend)
    config = BackboneConfig(
        input_size=32, conv_channels=(8, 8), conv_kernels=(5, 3), fc_units=32, seed=3
    )
    rng = np.random.default_rng(99)
    x = rng.normal(size=(4, 1, 32, 32)).astype(np.float32)

    summary = {"backend": backend, "checks": [], "ok": True}

    cnn = WaferCNN(num_classes=5, config=config)
    cnn.eval()
    net = SelectiveNet(num_classes=5, config=config)
    net.eval()
    with eager_only():
        cnn_ref = (cnn.predict_proba(x, batch_size=len(x)),)
        net_ref = net.predict_batched(x, batch_size=len(x))

    pool_sizes = list(threads) if backend == "threaded" else [None]
    previous = thread_count()
    try:
        for pool in pool_sizes:
            if pool is not None:
                configure_threads(pool)
            for name, model, ref in (
                ("WaferCNN", cnn, cnn_ref),
                ("SelectiveNet", net, net_ref),
            ):
                check = _check(name, compiled_for(model, backend=backend), x, ref)
                if pool is not None:
                    check["threads"] = pool
                summary["checks"].append(check)
                summary["ok"] &= check["bit_identical"]
    finally:
        configure_threads(previous)
    summary["ok"] = bool(summary["ok"])
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.nn.compile.smoke",
        description="Compile two reference models and check bit-identity.",
    )
    parser.add_argument(
        "--backend", default=None,
        help="compile backend name (default: REPRO_COMPILE_BACKEND or numpy)",
    )
    parser.add_argument(
        "--threads", default="1,4", metavar="N,N",
        help="comma-separated pool sizes checked with --backend threaded",
    )
    args = parser.parse_args(argv)
    threads = tuple(int(part) for part in args.threads.split(",") if part)
    summary = run_smoke(backend=args.backend, threads=threads)
    print(json.dumps(summary))
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
