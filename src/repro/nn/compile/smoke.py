"""Compiler smoke check: ``python -m repro.nn.compile.smoke``.

Builds a small Table-I-shaped CNN and a SelectiveNet, compiles both,
and asserts the compiled outputs are **bit-identical** to the eager
``inference_mode`` outputs.  Prints a one-line JSON summary and exits
nonzero on any mismatch, so CI (``scripts/check.sh``) can gate on it in
a few seconds.
"""

from __future__ import annotations

import json
import sys

import numpy as np


def run_smoke() -> dict:
    from ...core.cnn import BackboneConfig, WaferCNN
    from ...core.selective import SelectiveNet
    from . import compiled_for

    config = BackboneConfig(
        input_size=32, conv_channels=(8, 8), conv_kernels=(5, 3), fc_units=32, seed=3
    )
    rng = np.random.default_rng(99)
    x = rng.normal(size=(4, 1, 32, 32)).astype(np.float32)

    summary = {"checks": [], "ok": True}

    cnn = WaferCNN(num_classes=5, config=config)
    cnn.eval()
    compiled = compiled_for(cnn)
    out = compiled.try_run(x)
    from . import eager_only

    with eager_only():
        eager = cnn.predict_proba(x, batch_size=len(x))
    cnn_ok = out is not None and np.array_equal(out[0], eager)
    graph = next(iter(compiled.graphs.values()), None)
    summary["checks"].append(
        {
            "model": "WaferCNN",
            "compiled": out is not None,
            "bit_identical": bool(cnn_ok),
            "kernels": graph.kernel_count if graph else 0,
            "ops_fused": graph.ops_fused if graph else 0,
            "arena_bytes": graph.arena_nbytes if graph else 0,
        }
    )
    summary["ok"] &= cnn_ok

    net = SelectiveNet(num_classes=5, config=config)
    net.eval()
    compiled = compiled_for(net)
    out = compiled.try_run(x)
    with eager_only():
        probs, scores = net.predict_batched(x, batch_size=len(x))
    net_ok = (
        out is not None
        and np.array_equal(out[0], probs)
        and np.array_equal(out[1], scores)
    )
    graph = next(iter(compiled.graphs.values()), None)
    summary["checks"].append(
        {
            "model": "SelectiveNet",
            "compiled": out is not None,
            "bit_identical": bool(net_ok),
            "kernels": graph.kernel_count if graph else 0,
            "ops_fused": graph.ops_fused if graph else 0,
            "arena_bytes": graph.arena_nbytes if graph else 0,
        }
    )
    summary["ok"] &= net_ok
    summary["ok"] = bool(summary["ok"])
    return summary


def main() -> int:
    summary = run_smoke()
    print(json.dumps(summary))
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
