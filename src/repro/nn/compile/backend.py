"""Pluggable execution backends for compiled graphs.

A backend answers two questions per fused kernel:

* :meth:`Backend.scratch_requests` — how many bytes of kernel-private
  scratch it wants (the planner carves these out of the shared arena
  with kernel-only lifetimes);
* :meth:`Backend.lower` — a Python closure executing the kernel against
  the run environment.

Backends register by name in a process-wide table
(:func:`register_backend` / :func:`get_backend`), so a threaded or
BLAS-batched implementation is a registration, not a rewrite of the
compiler: trace, fusion, and planning are backend-agnostic.

The stock :class:`NumpyBackend` mirrors the eager inference fast paths
*operation for operation* — same gather maps, same GEMM call shapes,
same in-place bias/activation sequence, same NHWC pooling reduction —
so compiled outputs are bit-identical to eager ``inference_mode``
outputs (pinned by ``tests/compile/test_compile_parity.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from .. import functional as F
from .fuse import FusedProgram, Kernel
from .ir import LazyOp, UnsupportedOpError

__all__ = ["Backend", "NumpyBackend", "register_backend", "get_backend", "backend_names"]

#: ``getter(env) -> ndarray`` — resolves one graph value for this run.
Getter = Callable[[dict], np.ndarray]


class Backend:
    """Interface a compiled-graph execution backend implements."""

    name = "abstract"

    def scratch_requests(
        self, kernel: Kernel, program: FusedProgram
    ) -> List[Tuple[str, int]]:
        """``(tag, nbytes)`` scratch wanted while ``kernel`` runs."""
        raise NotImplementedError

    def hosts_output(self, kernel: Kernel, program: FusedProgram) -> bool:
        """True if the lowering publishes ``env[kernel.output]`` itself.

        Hosted outputs get no planned arena slot: the kernel hands a
        freshly-owned array (often a zero-copy layout view) to its
        consumers through the run environment instead of filling a
        preallocated buffer.  This is how a conv kernel avoids the
        NHWC→NCHW materialization copy the eager fast path never pays.
        """
        return False

    def lower(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        out: Getter,
        scratch: Dict[str, np.ndarray],
    ) -> Callable[[dict], None]:
        """Return a closure that executes ``kernel`` for one run.

        ``out(env)`` yields the kernel's output buffer: an arena view
        for planned intermediates, allocated-on-first-use (and
        published into ``env``) for graph outputs.  Kernels for which
        :meth:`hosts_output` is true ignore ``out`` and assign
        ``env[kernel.output]`` themselves.
        """
        raise NotImplementedError


_BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register ``backend`` under ``backend.name`` (latest wins)."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None


def backend_names() -> List[str]:
    return sorted(_BACKENDS)


def _itemsize(op: LazyOp) -> int:
    return int(np.dtype(op.dtype).itemsize)


def _numel(op: LazyOp) -> int:
    return int(np.prod(op.shape, dtype=np.int64))


def _is_conv_kernel(kernel: Kernel) -> bool:
    return kernel.kind == "gemm" and kernel.ops[0].kind == "conv2d"


class NumpyBackend(Backend):
    """Reference interpreter: the eager numpy fast paths, arena-hosted.

    Every lowering below replays the exact numpy call sequence of the
    corresponding eager inference path, because bit-identical parity is
    part of the compiled path's contract.  Change one only together
    with its eager twin (and the parity wall will tell you if you
    forget).
    """

    name = "numpy"

    # ------------------------------------------------------------------
    # Scratch sizing
    # ------------------------------------------------------------------
    def scratch_requests(
        self, kernel: Kernel, program: FusedProgram
    ) -> List[Tuple[str, int]]:
        root = kernel.ops[0]
        if root.kind != "conv2d":
            return []
        n, c_in, h, w = self._conv_input_shape(kernel, root)
        kh, kw = self._conv_kernel_hw(root)
        ph, pw = root.params["padding"]
        item = _itemsize(root)
        requests: List[Tuple[str, int]] = []
        if ph or pw:
            requests.append(
                ("padded", n * c_in * (h + 2 * ph) * (w + 2 * pw) * item)
            )
        out_hw = root.shape[2] * root.shape[3]
        requests.append(("cols", n * out_hw * c_in * kh * kw * item))
        if kernel.pool:
            # Pooled convs GEMM into arena scratch (the pooling max
            # allocates the small surviving array).  Unpooled convs
            # GEMM into a fresh per-run buffer whose transposed view
            # *is* the published output — mirroring the eager fast
            # path's allocation behaviour exactly — so they want no
            # arena-hosted GEMM scratch.
            requests.append(("gemm", n * out_hw * root.shape[1] * item))
        return requests

    def hosts_output(self, kernel: Kernel, program: FusedProgram) -> bool:
        # Conv kernels publish NHWC-strided views of freshly-owned
        # arrays (see _lower_conv) rather than materializing NCHW.
        return _is_conv_kernel(kernel)

    @staticmethod
    def _conv_input_shape(kernel: Kernel, root: LazyOp) -> Tuple[int, ...]:
        n = root.shape[0]
        # Recover (C_in, H, W) from the weight leaf + output geometry.
        return (n,) + root.params["input_chw"]

    @staticmethod
    def _conv_kernel_hw(root: LazyOp) -> Tuple[int, int]:
        return root.params["kernel"]

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def lower(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        out: Getter,
        scratch: Dict[str, np.ndarray],
    ) -> Callable[[dict], None]:
        root = kernel.ops[0]
        if kernel.kind == "gemm" and root.kind == "conv2d":
            return self._lower_conv(kernel, program, get, out, scratch)
        if kernel.kind == "gemm" and root.kind == "matmul":
            return self._lower_matmul(kernel, get, out)
        if kernel.kind == "elementwise":
            return self._lower_elementwise_chain(kernel, get, out)
        single = {
            "maxpool": self._lower_maxpool,
            "avgpool": self._lower_avgpool,
            "upsample": self._lower_upsample,
            "softmax": self._lower_softmax,
            "log_softmax": self._lower_log_softmax,
        }.get(root.kind)
        if single is None:
            raise UnsupportedOpError(f"numpy backend cannot lower {root.kind!r}")
        return single(root, get(root.inputs[0]), out)

    # -- GEMM-rooted kernels -------------------------------------------
    def _lower_conv(
        self,
        kernel: Kernel,
        program: FusedProgram,
        get: Callable[[int], Getter],
        out: Getter,
        scratch: Dict[str, np.ndarray],
    ) -> Callable[[dict], None]:
        root = kernel.ops[0]
        n, c_in, h, w = self._conv_input_shape(kernel, root)
        kh, kw = self._conv_kernel_hw(root)
        stride = root.params["stride"]
        ph, pw = root.params["padding"]
        c_out, out_h, out_w = root.shape[1], root.shape[2], root.shape[3]
        rows, features = n * out_h * out_w, c_in * kh * kw
        index = F._im2col_index(c_in, h, w, (kh, kw), stride, (ph, pw))
        get_x = get(root.inputs[0])
        get_w = get(root.inputs[1])
        chain = self._chain_appliers(kernel.ops[1:], get, channels_last=True)
        dt = np.dtype(root.dtype)
        padded = scratch.get("padded")
        if padded is not None:
            padded = padded.view(dt).reshape(n, c_in, h + 2 * ph, w + 2 * pw)
        cols3 = scratch["cols"].view(dt).reshape((n,) + index.shape)
        pool_hw = kernel.pool[0].params["kernel"] if kernel.pool else None
        out_id = kernel.output
        gemm = None
        if "gemm" in scratch:
            gemm = scratch["gemm"].view(dt).reshape(rows, c_out)

        # The output is *published*, not copied out (hosts_output):
        # pooled convs hand over the pooling reduction's fresh array,
        # unpooled convs a transposed view of a fresh GEMM buffer —
        # the exact objects (and allocations) of the eager fast path,
        # with no NCHW materialization copy in either case.
        def run(env: dict) -> None:
            x = get_x(env)
            if padded is not None:
                padded.fill(0)
                padded[:, :, ph:ph + h, pw:pw + w] = x
                flat = padded.reshape(n, -1)
            else:
                flat = x.reshape(n, -1)
            np.take(flat, index, axis=1, mode="clip", out=cols3)
            cols = cols3.reshape(rows, features)
            weight = get_w(env)
            buf = gemm if gemm is not None else np.empty((rows, c_out), dtype=dt)
            np.matmul(cols, weight.reshape(c_out, -1).T, out=buf)
            for apply in chain:
                apply(buf, env)
            if pool_hw is not None:
                qh, qw = pool_hw
                nhwc = buf.reshape(n, out_h // qh, qh, out_w // qw, qw, c_out)
                env[out_id] = nhwc.max(axis=(2, 4)).transpose(0, 3, 1, 2)
            else:
                env[out_id] = buf.reshape(n, out_h, out_w, c_out).transpose(
                    0, 3, 1, 2
                )

        return run

    def _lower_matmul(
        self, kernel: Kernel, get: Callable[[int], Getter], out: Getter
    ) -> Callable[[dict], None]:
        get_x = get(kernel.ops[0].inputs[0])
        get_w = get(kernel.ops[0].inputs[1])
        chain = self._chain_appliers(kernel.ops[1:], get, channels_last=True)

        def run(env: dict) -> None:
            target = out(env)
            np.matmul(get_x(env), get_w(env), out=target)
            for apply in chain:
                apply(target, env)

        return run

    # -- Elementwise ----------------------------------------------------
    def _chain_appliers(
        self,
        ops: Tuple[LazyOp, ...],
        get: Callable[[int], Getter],
        channels_last: bool,
    ) -> List[Callable[[np.ndarray, dict], None]]:
        """In-place appliers for a fused elementwise chain.

        ``channels_last`` marks the GEMM-rows layout ``(rows, C)``: the
        channel axis is last regardless of the op's recorded NCHW
        geometry, so per-channel operands broadcast without reshaping.
        Each applier performs the same scalar operations as its eager
        twin, so the result is bit-identical even though the loop order
        over elements differs from NCHW.
        """
        appliers: List[Callable[[np.ndarray, dict], None]] = []
        for op in ops:
            appliers.append(self._applier(op, get, channels_last))
        return appliers

    def _applier(
        self, op: LazyOp, get: Callable[[int], Getter], channels_last: bool
    ) -> Callable[[np.ndarray, dict], None]:
        kind = op.kind

        def shape_operand(getter: Getter, broadcast) -> Getter:
            if channels_last or broadcast is None:
                return getter
            return lambda env: getter(env).reshape(broadcast)

        if kind == "bias_add":
            axis = op.params.get("channel_axis", -1)
            broadcast = None
            if axis in (1, -3) and len(op.shape) == 4:
                broadcast = (1, op.shape[1], 1, 1)
            get_b = shape_operand(get(op.inputs[1]), broadcast)

            def apply(buf: np.ndarray, env: dict) -> None:
                buf += get_b(env)

            return apply
        if kind == "relu":
            return lambda buf, env: np.maximum(buf, 0, out=buf)
        if kind == "leaky_relu":
            slope = op.params["negative_slope"]

            def apply(buf: np.ndarray, env: dict) -> None:
                scale = np.where(buf > 0, 1.0, slope).astype(buf.dtype)
                buf *= scale

            return apply
        if kind == "sigmoid":
            def apply(buf: np.ndarray, env: dict) -> None:
                np.copyto(buf, _sigmoid(buf))

            return apply
        if kind == "tanh":
            return lambda buf, env: np.tanh(buf, out=buf)
        if kind == "affine":
            broadcast = op.params.get("broadcast")
            get_s = shape_operand(get(op.inputs[1]), broadcast)
            get_t = shape_operand(get(op.inputs[2]), broadcast)

            def apply(buf: np.ndarray, env: dict) -> None:
                buf *= get_s(env)
                buf += get_t(env)

            return apply
        raise UnsupportedOpError(f"numpy backend cannot fuse {kind!r}")

    def _lower_elementwise_chain(
        self, kernel: Kernel, get: Callable[[int], Getter], out: Getter
    ) -> Callable[[dict], None]:
        get_x = get(kernel.ops[0].inputs[0])
        first = self._first_applier(kernel.ops[0], get)
        rest = self._chain_appliers(kernel.ops[1:], get, channels_last=False)

        def run(env: dict) -> None:
            target = out(env)
            first(get_x(env), target, env)
            for apply in rest:
                apply(target, env)

        return run

    def _first_applier(
        self, op: LazyOp, get: Callable[[int], Getter]
    ) -> Callable[[np.ndarray, np.ndarray, dict], None]:
        """``(x, out, env)`` form of an elementwise op: reads x, fills out."""
        kind = op.kind
        if kind == "relu":
            return lambda x, target, env: np.maximum(x, 0, out=target)
        if kind == "tanh":
            return lambda x, target, env: np.tanh(x, out=target)
        if kind == "sigmoid":
            return lambda x, target, env: np.copyto(target, _sigmoid(x))
        if kind == "leaky_relu":
            slope = op.params["negative_slope"]

            def run(x: np.ndarray, target: np.ndarray, env: dict) -> None:
                scale = np.where(x > 0, 1.0, slope).astype(x.dtype)
                np.multiply(x, scale, out=target)

            return run
        # bias_add / affine in native layout: stage x then apply in place.
        applier = self._applier(op, get, channels_last=False)

        def run(x: np.ndarray, target: np.ndarray, env: dict) -> None:
            np.copyto(target, x)
            applier(target, env)

        return run

    # -- Singleton kernels ---------------------------------------------
    def _lower_maxpool(
        self, op: LazyOp, get_x: Getter, out: Getter
    ) -> Callable[[dict], None]:
        kh, kw = op.params["kernel"]
        sh, sw = op.params["stride"]
        out_h, out_w = op.shape[2], op.shape[3]

        def run(env: dict) -> None:
            x = get_x(env)
            target = out(env)
            # Same slice-wise reduction as F._pool_max_slices, with the
            # accumulator hosted in the arena instead of a fresh array.
            np.copyto(target, x[:, :, 0:out_h * sh:sh, 0:out_w * sw:sw])
            for i in range(kh):
                for j in range(kw):
                    if i == 0 and j == 0:
                        continue
                    piece = x[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw]
                    np.maximum(target, piece, out=target)

        return run

    def _lower_avgpool(
        self, op: LazyOp, get_x: Getter, out: Getter
    ) -> Callable[[dict], None]:
        kh, kw = op.params["kernel"]
        sh, sw = op.params["stride"]
        out_h, out_w = op.shape[2], op.shape[3]

        def run(env: dict) -> None:
            x = get_x(env)
            target = out(env)
            scale = x.dtype.type(1.0 / (kh * kw))
            np.copyto(target, x[:, :, 0:out_h * sh:sh, 0:out_w * sw:sw])
            for i in range(kh):
                for j in range(kw):
                    if i == 0 and j == 0:
                        continue
                    target += x[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw]
            target *= scale

        return run

    def _lower_upsample(
        self, op: LazyOp, get_x: Getter, out: Getter
    ) -> Callable[[dict], None]:
        scale = op.params["scale"]
        n, c, out_h, out_w = op.shape
        h, w = out_h // scale, out_w // scale

        def run(env: dict) -> None:
            x = get_x(env)
            # Broadcast assignment == x.repeat(scale, 2).repeat(scale, 3).
            blocks = out(env).reshape(n, c, h, scale, w, scale)
            blocks[...] = x[:, :, :, None, :, None]

        return run

    def _lower_softmax(
        self, op: LazyOp, get_x: Getter, out: Getter
    ) -> Callable[[dict], None]:
        axis = op.params["axis"]

        def run(env: dict) -> None:
            x = get_x(env)
            target = out(env)
            # Mirrors Tensor.softmax's inference fast path exactly.
            np.subtract(x, x.max(axis=axis, keepdims=True), out=target)
            np.exp(target, out=target)
            target /= target.sum(axis=axis, keepdims=True)

        return run

    def _lower_log_softmax(
        self, op: LazyOp, get_x: Getter, out: Getter
    ) -> Callable[[dict], None]:
        axis = op.params["axis"]

        def run(env: dict) -> None:
            x = get_x(env)
            target = out(env)
            np.subtract(x, x.max(axis=axis, keepdims=True), out=target)
            exp = np.exp(target)
            target -= np.log(exp.sum(axis=axis, keepdims=True))

        return run


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """The numerically stable logistic of :meth:`Tensor.sigmoid`, verbatim."""
    clipped = np.clip(x, -60, 60)
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-clipped)),
        np.exp(clipped) / (1.0 + np.exp(clipped)),
    ).astype(x.dtype)


register_backend(NumpyBackend())
