"""Compile entry points: :func:`compile_module` and :class:`CompiledModule`.

The contract, end to end:

* ``nn.compile(model)`` returns a :class:`CompiledModule` wrapping the
  live model — parameters are *bound by reference* (re-read every run),
  so optimizer steps and ``load_state_dict`` are picked up without
  recompiling.
* Compiled outputs are **bit-identical** to the eager
  :class:`~repro.nn.tensor.inference_mode` outputs for the same inputs
  (pinned by the parity test wall).
* Anything the compiler does not cover — unknown layer types, layer
  subclasses, training-mode dropout/batch-norm, hooked modules — makes
  :meth:`CompiledModule.try_run` return ``None`` and bumps the
  ``compile.fallbacks`` counter; it never raises at the call site.
  Callers keep their eager path as the fallback arm.

Graphs are compiled per ``(input shape, dtype)`` and cached on the
:class:`CompiledModule`; model classes outside :mod:`repro.nn` (e.g.
:class:`repro.core.selective.SelectiveNet`) plug in whole-model graphs
via :func:`register_graph_factory`.

Telemetry (``repro.obs`` default registry):

* ``compile.graphs`` — graphs compiled (counter);
* ``compile.cache_hits`` / ``compile.cache_misses`` — per-run lookups
  against the per-model ``(shape, dtype)`` graph cache;
* ``compile.fallbacks`` — runs that fell back to eager;
* ``compile.kernels_fused`` — ops absorbed into other kernels;
* ``compile.arena_bytes`` — bytes planned across live compiled graphs
  (gauge).
"""

from __future__ import annotations

import os
import threading
import weakref
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..layers.base import Module
from ..tensor import _as_array
from .backend import get_backend
from .executor import CompiledGraph
from .fuse import fuse_graph
from .ir import Graph, UnsupportedOpError
from .plan import plan_buffers
from .trace import trace_module

__all__ = [
    "CompiledModule",
    "compile_module",
    "compiled_for",
    "register_graph_factory",
    "set_enabled",
    "is_enabled",
    "eager_only",
    "release_compiled",
    "resolve_backend_name",
    "set_default_backend",
    "default_backend_name",
    "active_backend_info",
    "BACKEND_ENV_VAR",
]

#: Environment variable selecting the compile backend process-wide.
BACKEND_ENV_VAR = "REPRO_COMPILE_BACKEND"


_default_registry = None


def _metrics():
    # Imported lazily: repro.obs pulls in profiling helpers that import
    # repro.nn, so a module-level import here would be circular.  Only
    # the function is cached — the registry itself may be reset between
    # tests, so it is re-resolved per call.
    global _default_registry
    if _default_registry is None:
        from ...obs.metrics import default_registry

        _default_registry = default_registry
    return _default_registry()


# ----------------------------------------------------------------------
# Global opt-in/out switch
# ----------------------------------------------------------------------
class _State:
    enabled = True
    lock = threading.Lock()


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable the compiled path; returns the old value."""
    with _State.lock:
        previous = _State.enabled
        _State.enabled = bool(flag)
    return previous


def is_enabled() -> bool:
    return _State.enabled


@contextmanager
def eager_only():
    """Scope in which every ``try_run`` falls back to eager (tests/benches)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


# ----------------------------------------------------------------------
# Backend selection policy
# ----------------------------------------------------------------------
class _BackendPolicy:
    #: Process-wide default set by :func:`set_default_backend`
    #: (e.g. by a serve replica at startup); ``None`` defers to the env.
    override: Optional[str] = None
    lock = threading.Lock()


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set the process default backend; returns the previous override.

    ``None`` clears the override, deferring to ``REPRO_COMPILE_BACKEND``
    and then ``"numpy"``.  Validates eagerly — a typo should fail here,
    at configuration time, not inside some later predict call.
    """
    if name is not None:
        get_backend(name)  # raises KeyError for unknown names
    with _BackendPolicy.lock:
        previous = _BackendPolicy.override
        _BackendPolicy.override = name
    return previous


def resolve_backend_name(backend: Optional[str] = None) -> str:
    """The backend a compile entry point should use.

    Resolution order: explicit argument > process default
    (:func:`set_default_backend`) > ``REPRO_COMPILE_BACKEND`` env var >
    ``"numpy"``.  The result is always a *registered* name — an unknown
    value anywhere in the chain raises ``KeyError`` listing the
    registered backends, so a misconfigured deployment fails loudly
    instead of silently serving the wrong backend.
    """
    name = backend
    if name is None:
        name = _BackendPolicy.override
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or None
    if name is None:
        name = "numpy"
    get_backend(name)  # validate; raises KeyError with the known names
    return name


def default_backend_name() -> str:
    """What :func:`compiled_for` would pick with no explicit argument."""
    return resolve_backend_name(None)


def active_backend_info() -> Dict[str, object]:
    """Provenance block: the resolved backend and its thread group.

    Stamped into ``machine_info()`` so every ``BENCH_*.json`` records
    which backend (and how many compile threads) produced its numbers.
    """
    from .threaded import thread_count

    name = default_backend_name()
    return {
        "backend": name,
        "threads": thread_count() if name == "threaded" else 1,
    }


# ----------------------------------------------------------------------
# Whole-model graph factories
# ----------------------------------------------------------------------
#: ``factory(model, input_shape, dtype) -> Graph`` keyed by exact type.
GraphFactory = Callable[[object, Tuple[int, ...], np.dtype], Graph]

_GRAPH_FACTORIES: Dict[type, GraphFactory] = {}


def register_graph_factory(model_type: type):
    """Register a whole-model graph builder for an exact model type.

    Used by model classes whose inference output is not simply
    ``forward(x)`` — e.g. SelectiveNet's two-headed
    ``(probabilities, selection_scores)``.
    """

    def decorator(factory: GraphFactory) -> GraphFactory:
        _GRAPH_FACTORIES[model_type] = factory
        return factory

    return decorator


def _build_graph(model, input_shape: Tuple[int, ...], dtype) -> Graph:
    factory = _GRAPH_FACTORIES.get(type(model))
    if factory is not None:
        return factory(model, input_shape, dtype)
    if isinstance(model, Module):
        # Structural trace of forward; exact-type dispatch inside raises
        # UnsupportedOpError for anything unknown (including subclasses).
        return trace_module(model, input_shape, dtype)
    raise UnsupportedOpError(f"cannot trace {type(model).__name__}")


# ----------------------------------------------------------------------
# CompiledModule
# ----------------------------------------------------------------------
class CompiledModule:
    """Lazy-compiling wrapper around one live model.

    Not serialized: pickling (e.g. shipping a model to a serve worker)
    moves only the model; each process compiles its own graphs on first
    use, which keeps compiled state process-local by construction.
    """

    def __init__(self, model, backend: Optional[str] = None) -> None:
        self.model = model
        self.backend_name = resolve_backend_name(backend)
        self._graphs: Dict[Tuple, CompiledGraph] = {}
        self._unsupported: set = set()
        self._lock = threading.Lock()

    # -- compilation ----------------------------------------------------
    def _key(self, x: np.ndarray) -> Tuple:
        return (tuple(x.shape), x.dtype.str, self.backend_name)

    def _compile(self, x: np.ndarray) -> CompiledGraph:
        graph = _build_graph(self.model, tuple(x.shape), x.dtype)
        program = fuse_graph(graph)
        backend = get_backend(self.backend_name)
        plan = plan_buffers(program, backend)
        compiled = CompiledGraph(program, plan, backend)
        registry = _metrics()
        registry.counter("compile.graphs").inc()
        registry.counter("compile.kernels_fused").inc(compiled.ops_fused)
        registry.gauge("compile.arena_bytes").add(compiled.arena_nbytes)
        # Numeric flag per backend name (the registry holds no strings);
        # repro.obs.top lists the set flags as the active backends.
        registry.gauge(f"compile.active.{self.backend_name}").set(1)
        return compiled

    # -- execution ------------------------------------------------------
    def try_run(self, x: np.ndarray) -> Optional[Tuple[np.ndarray, ...]]:
        """Run compiled if possible; ``None`` means "use your eager path".

        ``x`` is coerced exactly like ``Tensor(x)`` would coerce it, so
        the compiled run sees the same array the eager fallback would.
        """
        if not _State.enabled:
            return None
        model = self.model
        if getattr(model, "training", False):
            # Training-mode layers (dropout, batch-norm) are stochastic
            # or stateful; inference compilation covers eval mode only.
            _metrics().counter("compile.fallbacks").inc()
            return None
        x = _as_array(x)
        key = self._key(x)
        # Steady-state fast path: dict reads are atomic under the GIL,
        # so cache hits skip the lock entirely.
        compiled = self._graphs.get(key)
        if compiled is not None:
            _metrics().counter("compile.cache_hits").inc()
            return compiled.run(x)
        with self._lock:
            if key in self._unsupported:
                compiled = None
            else:
                compiled = self._graphs.get(key)
                if compiled is None:
                    _metrics().counter("compile.cache_misses").inc()
                    try:
                        compiled = self._compile(x)
                    except UnsupportedOpError:
                        self._unsupported.add(key)
                        compiled = None
                    else:
                        self._graphs[key] = compiled
                else:
                    _metrics().counter("compile.cache_hits").inc()
        if compiled is None:
            _metrics().counter("compile.fallbacks").inc()
            return None
        return compiled.run(x)

    def __call__(self, x) -> Tuple[np.ndarray, ...]:
        """Run the model's compiled inference function on ``x``.

        Falls back to eager ``model(x)`` (under no tape) when the model
        is not compilable; either way the result is the tuple of plain
        output arrays the traced graph defines (for a plain ``Module``,
        the forward output).
        """
        data = x.data if hasattr(x, "data") else _as_array(x)
        outputs = self.try_run(data)
        if outputs is not None:
            return outputs
        from ..tensor import Tensor, inference_mode

        with inference_mode():
            result = self.model(Tensor(data))
        if isinstance(result, tuple):
            return tuple(t.data for t in result)
        return (result.data,)

    # -- bookkeeping ----------------------------------------------------
    @property
    def graphs(self) -> Dict[Tuple, CompiledGraph]:
        return dict(self._graphs)

    def release(self) -> int:
        """Release every compiled arena; returns total bytes freed."""
        freed = 0
        with self._lock:
            for compiled in self._graphs.values():
                nbytes = compiled.release()
                freed += nbytes
                if nbytes:
                    _metrics().gauge("compile.arena_bytes").add(-nbytes)
        return freed

    def __getstate__(self):  # pragma: no cover - guard, not a feature
        raise TypeError(
            "CompiledModule is process-local and not picklable; "
            "pickle the underlying model instead"
        )


def compile_module(model, backend: Optional[str] = None) -> CompiledModule:
    """Compile ``model`` for repeated inference (the ``nn.compile`` call).

    ``backend=None`` resolves through the selection policy
    (:func:`resolve_backend_name`): process default, then the
    ``REPRO_COMPILE_BACKEND`` environment variable, then ``"numpy"``.
    """
    return CompiledModule(model, backend=backend)


#: Per-(model, backend) compiled wrappers, created on demand by the
#: predict paths.  Weakly keyed on the model so dropping it drops its
#: compiled graphs; the inner dict keys on the *resolved* backend name,
#: so switching backends mid-process keeps one wrapper per backend and
#: can never serve a plan compiled for the other backend's partition
#: metadata (each wrapper's graphs are keyed per backend too).  Never
#: pickled (each process builds its own).
_MODULE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MODULE_CACHE_LOCK = threading.Lock()


def compiled_for(model, backend: Optional[str] = None) -> CompiledModule:
    """The process-local :class:`CompiledModule` for ``model``.

    One cached wrapper per (model, resolved backend name); repeated
    calls with the same resolution return the same object.
    """
    name = resolve_backend_name(backend)
    with _MODULE_CACHE_LOCK:
        per_backend = _MODULE_CACHE.get(model)
        if per_backend is None:
            per_backend = {}
            _MODULE_CACHE[model] = per_backend
        compiled = per_backend.get(name)
        if compiled is None:
            compiled = CompiledModule(model, backend=name)
            per_backend[name] = compiled
        return compiled


def release_compiled() -> int:
    """Release every cached compiled arena (serve reclaim hook)."""
    freed = 0
    with _MODULE_CACHE_LOCK:
        modules = [
            compiled
            for per_backend in _MODULE_CACHE.values()
            for compiled in per_backend.values()
        ]
    for compiled in modules:
        freed += compiled.release()
    return freed
