"""Gradient-descent optimizers and learning-rate schedules.

The paper trains with Adam for 100 epochs; SGD (with optional momentum
and Nesterov acceleration) and RMSProp are provided for ablations and
for the linear baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers.base import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "ExponentialLR",
]


class Optimizer:
    """Base optimizer over a list of parameters.

    Subclasses implement :meth:`_update` for a single parameter given
    its gradient.  Weight decay, if set, is applied as decoupled L2
    (added to the gradient before the update rule).

    The hot loop is allocation-free: weight decay and the subclass
    update rules run through per-parameter scratch buffers (see
    :meth:`_buffer`) instead of materializing ``grad + wd * data`` and
    friends as fresh temporaries every step.
    """

    #: Names of the per-parameter slot dictionaries a subclass persists
    #: in :meth:`state_dict`; ``"m"`` maps to the ``self._m`` dict.
    _slot_names: tuple = ()

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._scratch: Dict[tuple, np.ndarray] = {}

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear all parameter gradients.

        ``set_to_none=False`` keeps each parameter's gradient buffer and
        zeroes it in place, so backward accumulates into reused memory.
        """
        for param in self.parameters:
            param.zero_grad(set_to_none)

    def _buffer(self, name: str, index: int, param: Parameter) -> np.ndarray:
        """Reusable uninitialized scratch shaped like ``param.data``."""
        key = (name, index)
        buf = self._scratch.get(key)
        if buf is None or buf.shape != param.data.shape or buf.dtype != param.data.dtype:
            buf = np.empty_like(param.data)
            self._scratch[key] = buf
        return buf

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        self._step_count += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                decayed = self._buffer("wd", index, param)
                np.multiply(param.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            self._update(index, param, grad)

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def _slot(self, name: str) -> Dict[int, np.ndarray]:
        return getattr(self, f"_{name}")

    def state_dict(self) -> Dict[str, object]:
        """Serializable optimizer state: hyperparameters, step count and
        every per-parameter slot buffer (``"<slot>.<param_index>"``)."""
        state: Dict[str, object] = {
            "step_count": self._step_count,
            "lr": self.lr,
            "weight_decay": self.weight_decay,
        }
        for name in self._slot_names:
            for index, array in self._slot(name).items():
                state[f"{name}.{index}"] = array.copy()
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        # Scalars may arrive as 0-d numpy arrays from an npz round-trip.
        self._step_count = int(state["step_count"])
        self.lr = float(state["lr"])
        if "weight_decay" in state:
            self.weight_decay = float(state["weight_decay"])
        for name in self._slot_names:
            slot = self._slot(name)
            slot.clear()
            prefix = f"{name}."
            for key, value in state.items():
                if not key.startswith(prefix):
                    continue
                index = int(key[len(prefix):])
                if not 0 <= index < len(self.parameters):
                    raise ValueError(
                        f"slot {key!r} refers to parameter {index}, but the "
                        f"optimizer holds {len(self.parameters)} parameters"
                    )
                param = self.parameters[index]
                array = np.asarray(value)
                if array.shape != param.data.shape:
                    raise ValueError(
                        f"slot {key!r} shape {array.shape} does not match "
                        f"parameter shape {param.data.shape}"
                    )
                slot[index] = array.astype(param.data.dtype, copy=True)


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    _slot_names = ("velocity",)

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        # In-place formulation of v = mu*v + g; relies only on IEEE-754
        # commutativity of * and +, so it is bit-identical to the
        # textbook expressions it replaces.
        if self.momentum:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(param.data)
                self._velocity[index] = velocity
            np.multiply(velocity, self.momentum, out=velocity)
            velocity += grad
            if self.nesterov:
                lookahead = self._buffer("tmp", index, param)
                np.multiply(velocity, self.momentum, out=lookahead)
                lookahead += grad
                grad = lookahead
            else:
                grad = velocity
        update = self._buffer("upd", index, param)
        np.multiply(grad, self.lr, out=update)
        param.data -= update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used in the paper."""

    _slot_names = ("m", "v")

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        # Allocation-free restatement of the textbook update; each line
        # maps to the original expression through IEEE-754 commutativity
        # of * only, so the trajectory is bit-identical.
        m = self._m.get(index)
        v = self._v.get(index)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            self._m[index] = m
            self._v[index] = v
        tmp = self._buffer("tmp", index, param)
        np.multiply(m, self.beta1, out=m)           # beta1 * m
        np.multiply(grad, 1 - self.beta1, out=tmp)  # (1-beta1) * grad
        m += tmp
        np.multiply(grad, 1 - self.beta2, out=tmp)  # (1-beta2) * grad * grad
        tmp *= grad
        np.multiply(v, self.beta2, out=v)           # beta2 * v
        v += tmp
        t = self._step_count
        np.divide(v, 1 - self.beta2 ** t, out=tmp)  # v_hat
        np.sqrt(tmp, out=tmp)
        tmp += self.eps
        update = self._buffer("upd", index, param)
        np.divide(m, 1 - self.beta1 ** t, out=update)  # m_hat
        update *= self.lr                              # lr * m_hat
        update /= tmp
        param.data -= update


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    _slot_names = ("cache",)

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.rho = float(rho)
        self.eps = float(eps)
        self._cache: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        cache = self._cache.get(index)
        if cache is None:
            cache = np.zeros_like(param.data)
            self._cache[index] = cache
        tmp = self._buffer("tmp", index, param)
        np.multiply(grad, 1 - self.rho, out=tmp)  # (1-rho) * grad * grad
        tmp *= grad
        np.multiply(cache, self.rho, out=cache)   # rho * cache
        cache += tmp
        np.sqrt(cache, out=tmp)
        tmp += self.eps
        update = self._buffer("upd", index, param)
        np.multiply(grad, self.lr, out=update)    # lr * grad
        update /= tmp
        param.data -= update


class LRSchedule:
    """Base learning-rate schedule bound to an optimizer.

    Call :meth:`step` once per epoch; the schedule overwrites
    ``optimizer.lr``.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)
        return self.optimizer.lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Keeps the learning rate fixed (the paper's setting)."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


class CosineLR(LRSchedule):
    """Cosine annealing from the base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
