"""Gradient-descent optimizers and learning-rate schedules.

The paper trains with Adam for 100 epochs; SGD (with optional momentum
and Nesterov acceleration) and RMSProp are provided for ablations and
for the linear baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers.base import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "ExponentialLR",
]


class Optimizer:
    """Base optimizer over a list of parameters.

    Subclasses implement :meth:`_update` for a single parameter given
    its gradient.  Weight decay, if set, is applied as decoupled L2
    (added to the gradient before the update rule).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        self._step_count += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._update(index, param, grad)

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Serializable optimizer state (step count and slot buffers)."""
        return {"step_count": self._step_count, "lr": self.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._step_count = int(state["step_count"])
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        if self.momentum:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[index] = velocity
            if self.nesterov:
                grad = grad + self.momentum * velocity
            else:
                grad = velocity
        param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used in the paper."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        m = self._m.get(index)
        v = self._v.get(index)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[index] = m
        self._v[index] = v
        t = self._step_count
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.rho = float(rho)
        self.eps = float(eps)
        self._cache: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        cache = self._cache.get(index)
        if cache is None:
            cache = np.zeros_like(param.data)
        cache = self.rho * cache + (1 - self.rho) * grad * grad
        self._cache[index] = cache
        param.data -= self.lr * grad / (np.sqrt(cache) + self.eps)


class LRSchedule:
    """Base learning-rate schedule bound to an optimizer.

    Call :meth:`step` once per epoch; the schedule overwrites
    ``optimizer.lr``.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)
        return self.optimizer.lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Keeps the learning rate fixed (the paper's setting)."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


class CosineLR(LRSchedule):
    """Cosine annealing from the base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
