"""Loss functions.

Includes the plain cross-entropy of Eq. (1) in the paper (with optional
per-sample weights, used to down-weight synthetic samples by ``w`` in
the augmentation scheme) plus the regression losses the auto-encoder
uses.  The SelectiveNet objective (Eqs. 6–9) builds on these and lives
in :mod:`repro.core.losses`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy",
    "one_hot",
]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels into a float32 one-hot matrix.

    >>> one_hot(np.array([0, 2]), 3).tolist()
    [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(f"labels out of range for {num_classes} classes")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def _per_sample_ce(logits: Tensor, labels: np.ndarray) -> Tensor:
    num_classes = logits.shape[-1]
    targets = one_hot(np.asarray(labels), num_classes)
    log_probs = logits.log_softmax(axis=-1)
    return -(log_probs * Tensor(targets)).sum(axis=-1)


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    sample_weights: Optional[np.ndarray] = None,
    reduction: str = "mean",
) -> Tensor:
    """Softmax cross-entropy from raw logits (Eq. 1).

    Parameters
    ----------
    logits:
        Raw scores, shape ``(N, num_classes)``.
    labels:
        Integer class labels, shape ``(N,)``.
    sample_weights:
        Optional per-sample weights; the paper multiplies the loss of
        synthetic (augmented) samples by ``w < 1``.
    reduction:
        ``"mean"``, ``"sum"``, or ``"none"``.  For ``"mean"`` with
        weights, the result is the weighted sum divided by N (so that
        down-weighting a sample strictly reduces its influence).
    """
    per_sample = _per_sample_ce(logits, labels)
    if sample_weights is not None:
        weights = np.asarray(sample_weights, dtype=np.float32)
        if weights.shape != (logits.shape[0],):
            raise ValueError("sample_weights must have shape (N,)")
        per_sample = per_sample * Tensor(weights)
    if reduction == "none":
        return per_sample
    if reduction == "sum":
        return per_sample.sum()
    if reduction == "mean":
        return per_sample.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood from log-probabilities."""
    num_classes = log_probs.shape[-1]
    targets = one_hot(np.asarray(labels), num_classes)
    per_sample = -(log_probs * Tensor(targets)).sum(axis=-1)
    if reduction == "none":
        return per_sample
    if reduction == "sum":
        return per_sample.sum()
    if reduction == "mean":
        return per_sample.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray], reduction: str = "mean") -> Tensor:
    """Mean squared error; the auto-encoder's reconstruction loss."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = prediction - target
    squared = diff * diff
    if reduction == "none":
        return squared
    if reduction == "sum":
        return squared.sum()
    if reduction == "mean":
        return squared.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def binary_cross_entropy(
    probs: Tensor,
    targets: Union[Tensor, np.ndarray],
    eps: float = 1e-7,
    reduction: str = "mean",
) -> Tensor:
    """BCE on probabilities (post-sigmoid), clipped for stability."""
    if not isinstance(targets, Tensor):
        targets = Tensor(np.asarray(targets, dtype=np.float32))
    probs = probs.clip(eps, 1.0 - eps)
    per_element = -(targets * probs.log() + (1.0 - targets) * (1.0 - probs).log())
    if reduction == "none":
        return per_element
    if reduction == "sum":
        return per_element.sum()
    if reduction == "mean":
        return per_element.mean()
    raise ValueError(f"unknown reduction {reduction!r}")
