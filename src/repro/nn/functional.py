"""Spatial operations for the autograd engine.

Implements 2-D convolution, transposed convolution, max pooling, and
nearest-neighbour upsampling as tape-aware operations on
:class:`~repro.nn.tensor.Tensor`.  Convolution uses the classic
im2col/col2im reduction to matrix multiplication, which is the fastest
strategy available in pure numpy.

All spatial tensors use the NCHW layout: ``(batch, channels, height,
width)``.

Every operator has two execution paths:

* the **reference tape path**, taken whenever gradients must flow
  (grad enabled and some input requires grad): allocates fresh arrays
  and wires a backward closure into the tape;
* the **inference fast path**, taken otherwise: builds no closures,
  skips backward-only bookkeeping (pooling argmax), and — inside
  :class:`~repro.nn.tensor.inference_mode` — reuses process-wide
  im2col/GEMM scratch buffers so a steady-state serving loop performs
  no large allocations per batch.

Unfolding (both paths) goes through a cached **im2col index map**: a
read-only gather-index matrix keyed by ``(shape, kernel, stride,
padding)`` that turns the window extraction into a single ``np.take``.
The map cache is LRU-bounded by a byte budget
(:func:`set_index_cache_budget`) so a long-running server seeing many
input geometries cannot grow it without limit.
The tape path additionally supports per-layer :class:`LayerScratch`
buffers, consulted only inside the :class:`train_scratch` context, so
a strict forward → backward → step training loop performs no large
per-batch allocations either (see :class:`train_scratch` for the
aliasing contract).

The two paths are numerically equivalent (pinned by
``tests/nn/test_parity.py``); scratch buffers never escape an
operator, so returned arrays are always freshly owned.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .tensor import Tensor, is_grad_enabled, is_inference_mode

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_relu",
    "conv2d_relu_pool",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "upsample2d",
    "conv_output_size",
    "clear_scratch",
    "scratch_nbytes",
    "free_inference_scratch",
    "LayerScratch",
    "train_scratch",
    "is_train_scratch_enabled",
    "clear_index_cache",
    "index_cache_nbytes",
    "index_cache_budget",
    "set_index_cache_budget",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def _recording(*tensors: Optional[Tensor]) -> bool:
    """Whether an op over ``tensors`` must build backward closures."""
    return is_grad_enabled() and any(
        t is not None and t.requires_grad for t in tensors
    )


class _ScratchPool:
    """Reusable scratch arrays keyed by ``(shape, dtype)``.

    Only consulted on the inference fast path, and only for buffers
    that are fully consumed before the operator returns (im2col column
    matrices, GEMM outputs, padded images).  Returned tensors always
    own fresh memory, so a buffer can be handed out again on the very
    next call without aliasing anything the caller can still see.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[Tuple[int, ...], str], np.ndarray] = {}

    def get(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


_scratch = _ScratchPool()


def clear_scratch() -> None:
    """Release every cached inference scratch buffer."""
    _scratch.clear()


def scratch_nbytes() -> int:
    """Total bytes currently held by the inference scratch pool."""
    return _scratch.nbytes


def free_inference_scratch() -> int:
    """Release the inference scratch pool; returns the bytes freed.

    The pool regrows lazily on the next :class:`~repro.nn.tensor
    .inference_mode` forward, so this is safe to call whenever a
    serving loop goes idle — it trades the next batch's allocations
    for a zero steady-state footprint between traffic bursts.
    """
    freed = _scratch.nbytes
    _scratch.clear()
    return freed


class _TrainScratchState:
    """Process-wide switch enabling per-layer training scratch reuse."""

    enabled = False


class train_scratch:
    """Context manager enabling allocation-free training hot loops.

    Inside this context, layers that own a :class:`LayerScratch` (every
    :class:`~repro.nn.layers.conv.Conv2D` / ``ConvTranspose2D``) reuse
    their im2col column matrix and gradient work buffers across batches
    instead of allocating fresh arrays each step.

    The aliasing contract: a layer's buffers are valid from one forward
    until that forward's backward has run, so the context is only safe
    under the strict step discipline ``forward → backward → step`` (the
    :class:`~repro.core.trainer.Trainer` and ``train_autoencoder``
    loops).  Running two forwards of the same layer before calling
    ``backward`` (e.g. gradient accumulation across batches) would
    clobber the first forward's columns — leave the context disabled
    for such schedules.  Not thread-safe (like ``no_grad``).
    """

    def __enter__(self) -> "train_scratch":
        self._prev = _TrainScratchState.enabled
        _TrainScratchState.enabled = True
        return self

    def __exit__(self, *exc) -> None:
        _TrainScratchState.enabled = self._prev


def is_train_scratch_enabled() -> bool:
    """Whether :class:`train_scratch` buffer reuse is currently active."""
    return _TrainScratchState.enabled


class LayerScratch:
    """Reusable per-layer work buffers for the training hot loop.

    Each buffer is keyed by ``(tag, shape, dtype)``; a layer holds one
    instance, so buffers are never shared between layers and the only
    aliasing hazard is the same layer's previous step (see
    :class:`train_scratch`).
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], str], np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    # Scratch is pure cache: pickling a layer (e.g. shipping a model to
    # a spawn-start worker) must not drag megabytes of work buffers.
    def __getstate__(self) -> tuple:
        return ()

    def __setstate__(self, state: tuple) -> None:
        self._buffers = {}


#: Read-only im2col gather maps keyed by (C, H, W, kernel, stride, pad),
#: in LRU order (oldest first) under the :func:`index_cache_budget`.
_INDEX_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

#: Byte budget for cached gather maps.  A fixed-geometry training loop
#: needs a few MB; the budget only matters for long-running servers
#: seeing many input shapes, where the cache would otherwise grow
#: without limit.  64 MiB holds ~10 distinct Table-I geometries.
_INDEX_CACHE_BUDGET = 64 * 1024 * 1024


def _evict_index_cache() -> None:
    """Drop least-recently-used gather maps until under budget.

    The newest entry is never evicted even if it alone exceeds the
    budget — the caller is about to use it, and evicted arrays stay
    alive for any in-flight reference anyway (eviction only drops the
    cache's own reference).
    """
    while len(_INDEX_CACHE) > 1 and index_cache_nbytes() > _INDEX_CACHE_BUDGET:
        _INDEX_CACHE.popitem(last=False)


def _im2col_index(
    c: int,
    h: int,
    w: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Cached gather map turning window unfolding into one ``np.take``.

    Returns a read-only ``(out_h * out_w, C * kh * kw)`` intp matrix
    whose entry ``[p, c*kh*kw + k]`` is the flat index (into the padded
    ``(C * H' * W')`` image of one sample) of kernel tap ``k`` of
    channel ``c`` at output position ``p``.  Building it is cheap but
    per-geometry; caching makes repeated convolutions of the same shape
    (every training step) index-computation free.
    """
    key = (c, h, w, kernel, stride, padding)
    cached = _INDEX_CACHE.get(key)
    if cached is not None:
        _INDEX_CACHE.move_to_end(key)
        return cached
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    padded_h, padded_w = h + 2 * ph, w + 2 * pw
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    rows = (np.arange(out_h) * sh)[:, None, None, None] * padded_w
    cols = (np.arange(out_w) * sw)[None, :, None, None]
    krow = (np.arange(kh) * padded_w)[None, None, :, None]
    kcol = np.arange(kw)[None, None, None, :]
    spatial = (rows + cols + krow + kcol).reshape(out_h * out_w, kh * kw)
    channel = (np.arange(c) * (padded_h * padded_w))[None, :, None]
    index = (spatial[:, None, :] + channel).reshape(out_h * out_w, c * kh * kw)
    index = np.ascontiguousarray(index, dtype=np.intp)
    index.setflags(write=False)
    _INDEX_CACHE[key] = index
    _evict_index_cache()
    return index


def clear_index_cache() -> None:
    """Release every cached im2col gather map."""
    _INDEX_CACHE.clear()


def index_cache_nbytes() -> int:
    """Total bytes currently held by cached im2col gather maps."""
    return sum(index.nbytes for index in _INDEX_CACHE.values())


def index_cache_budget() -> int:
    """Current byte budget of the im2col gather-map cache."""
    return _INDEX_CACHE_BUDGET


def set_index_cache_budget(nbytes: int) -> int:
    """Set the gather-map cache budget; returns the previous budget.

    Shrinking the budget evicts least-recently-used maps immediately
    (except the single newest entry, which always survives).
    """
    global _INDEX_CACHE_BUDGET
    if nbytes < 0:
        raise ValueError("budget must be non-negative")
    previous = _INDEX_CACHE_BUDGET
    _INDEX_CACHE_BUDGET = int(nbytes)
    _evict_index_cache()
    return previous


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unfold sliding windows of ``x`` into a 2-D matrix.

    Implemented as a single gather through the cached index map of
    :func:`_im2col_index` — measurably faster than a strided-view copy
    on the paper's geometries, and allocation-free when ``out`` is
    supplied.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Convolution geometry, each an ``(h, w)`` pair.
    out:
        Optional preallocated ``(N, out_h * out_w, C * kh * kw)``
        buffer receiving the gather.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(N * out_h * out_w, C * kh * kw)`` whose rows
        are flattened receptive fields.
    """
    n, c, h, w = x.shape
    ph, pw = padding
    index = _im2col_index(c, h, w, kernel, stride, padding)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    elif not x.flags.c_contiguous:
        x = np.ascontiguousarray(x)
    flat = x.reshape(n, -1)
    # mode="clip" skips bounds checking (indices are valid by
    # construction) and lets np.take write straight into ``out``.
    cols = np.take(flat, index, axis=1, mode="clip", out=out)
    return cols.reshape(n * index.shape[0], index.shape[1])


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_padded: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    ``out_padded``, when given, must be a ``(N, C, H + 2*ph, W + 2*pw)``
    buffer; it is zeroed and used as the accumulation target, and for
    nonzero padding the returned array is a view into it — callers that
    pass scratch here must consume the result before the next call.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if out_padded is None:
        padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    else:
        padded = out_padded
        padded.fill(0)
    reshaped = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # reshaped: (N, C, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += reshaped[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph:h + ph, pw:w + pw]
    return padded


def _strided_windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Read-only sliding-window view ``(N, C, oh, ow, kh, kw)`` of ``x``."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    strides = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * sh,
            strides[3] * sw,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )


def _pad_input(
    x: np.ndarray, padding: Tuple[int, int], pool: Optional[_ScratchPool]
) -> np.ndarray:
    """Zero-pad NCHW input, through scratch when a pool is provided."""
    ph, pw = padding
    if not (ph or pw):
        return x
    if pool is None:
        return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x.shape
    padded = pool.get((n, c, h + 2 * ph, w + 2 * pw), x.dtype)
    padded.fill(0)
    padded[:, :, ph:ph + h, pw:pw + w] = x
    return padded


def _pool_max_slices(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Window max via ``kh*kw`` strided-slice ``np.maximum`` passes.

    An order of magnitude faster than reducing over the trailing axes
    of an ``as_strided`` window view, which numpy executes as a slow
    small-stride gather.  Works on NCHW (spatial = last two axes).
    """
    kh, kw = kernel
    sh, sw = stride
    out_h = (x.shape[2] - kh) // sh + 1
    out_w = (x.shape[3] - kw) // sw + 1
    result: Optional[np.ndarray] = None
    for i in range(kh):
        for j in range(kw):
            piece = x[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw]
            if result is None:
                result = np.ascontiguousarray(piece)
            else:
                np.maximum(result, piece, out=result)
    return result


def _conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    activation: Optional[str] = None,
    pool_kernel: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """Tape-free convolution forward, optionally fused with bias+ReLU
    and a non-overlapping max-pool.

    Under :func:`~repro.nn.tensor.is_inference_mode`, the im2col column
    matrix lives in the scratch pool; bias add and ReLU run in place on
    the GEMM output.  A fused ``pool_kernel`` (stride == kernel, evenly
    dividing the conv output) is applied in the GEMM's natural NHWC
    layout, so only the pooled result — 1/4th of the activation for a
    2x2 pool — pays the transpose back to NCHW; only then does the GEMM
    output itself live in scratch.  Unpooled results are returned as a
    transposed view of a freshly allocated GEMM output (never scratch),
    so a standalone conv performs strictly less work than the tape path.
    """
    pool = _scratch if is_inference_mode() else None
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    index = _im2col_index(c_in, h, w, (kh, kw), stride, padding)
    padded = _pad_input(x, padding, pool)
    if not padded.flags.c_contiguous:
        padded = np.ascontiguousarray(padded)
    flat = padded.reshape(n, -1)
    rows, features = n * out_h * out_w, c_in * kh * kw
    if pool is None:
        cols3 = np.take(flat, index, axis=1, mode="clip")
    else:
        cols3 = pool.get((n,) + index.shape, x.dtype)
        np.take(flat, index, axis=1, mode="clip", out=cols3)
    if pool is not None and pool_kernel is not None:
        # Only the pooled path keeps the GEMM output in scratch: the
        # pooled result is a fresh copy anyway, so the full-size
        # activation never escapes.  Unpooled outputs escape as tensor
        # data, so they are allocated fresh and returned as a transposed
        # view — paying neither a scratch round-trip nor the extra
        # full-activation copy the tape path avoids.
        gemm_out = pool.get((rows, c_out), x.dtype)
    else:
        gemm_out = np.empty((rows, c_out), dtype=x.dtype)
    cols = cols3.reshape(rows, features)
    np.matmul(cols, weight.reshape(c_out, -1).T, out=gemm_out)
    if bias is not None:
        gemm_out += bias
    if activation == "relu":
        np.maximum(gemm_out, 0, out=gemm_out)
    if pool_kernel is not None:
        ph, pw = pool_kernel
        nhwc = gemm_out.reshape(n, out_h // ph, ph, out_w // pw, pw, c_out)
        pooled = nhwc.max(axis=(2, 4))
        return pooled.transpose(0, 3, 1, 2).copy()
    return gemm_out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    scratch: Optional[LayerScratch] = None,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Filters, shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-output-channel bias, shape ``(C_out,)``.
    scratch:
        Optional per-layer :class:`LayerScratch`.  Honoured only inside
        a :func:`train_scratch` block: the im2col column matrix and the
        backward work buffers then live in (and are reused from) the
        layer's scratch instead of being reallocated every batch.  The
        caller must invoke the layer at most once per forward pass.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    if not _recording(x, weight, bias):
        return Tensor(
            _conv2d_forward(
                x.data, weight.data, None if bias is None else bias.data,
                stride, padding,
            )
        )
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])
    rows, features = n * out_h * out_w, c_in * kh * kw
    use_scratch = scratch is not None and _TrainScratchState.enabled

    if use_scratch:
        cols_buf = scratch.get("cols", (n, out_h * out_w, features), x.data.dtype)
        cols = im2col(x.data, (kh, kw), stride, padding, out=cols_buf)
    else:
        cols = im2col(x.data, (kh, kw), stride, padding)  # (N*oh*ow, C*kh*kw)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = cols @ w_mat.T  # (N*oh*ow, C_out); fresh — escapes as tensor data
    if bias is not None:
        out += bias.data
    out_data = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        # grad: (N, C_out, oh, ow) -> (N*oh*ow, C_out)
        if use_scratch:
            grad_mat = scratch.get("grad_mat", (rows, c_out), grad.dtype)
            np.copyto(
                grad_mat.reshape(n, out_h, out_w, c_out),
                grad.transpose(0, 2, 3, 1),
            )
        else:
            grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if weight.requires_grad:
            if use_scratch:
                grad_w = scratch.get("grad_w", (c_out, features), grad.dtype)
                np.matmul(grad_mat.T, cols, out=grad_w)
            else:
                grad_w = grad_mat.T @ cols  # (C_out, C*kh*kw)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            if use_scratch:
                grad_cols = scratch.get("grad_cols", (rows, features), grad.dtype)
                np.matmul(grad_mat, w_mat, out=grad_cols)
                padded = scratch.get(
                    "col2im",
                    (n, c_in, h + 2 * padding[0], w + 2 * padding[1]),
                    grad.dtype,
                )
                grad_x = col2im(
                    grad_cols, x.shape, (kh, kw), stride, padding,
                    out_padded=padded,
                )
            else:
                grad_cols = grad_mat @ w_mat  # (N*oh*ow, C*kh*kw)
                grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
            # _accumulate copies, so scratch-backed grad_x never escapes.
            x._accumulate(grad_x)

    return Tensor._make(out_data, parents, backward)


def conv2d_relu(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    scratch: Optional[LayerScratch] = None,
) -> Tensor:
    """Fused conv → bias → ReLU.

    On the inference fast path the bias add and rectification happen in
    place on the GEMM output, saving two full activation-sized passes
    and allocations per layer.  When gradients are required this
    composes :func:`conv2d` with ``relu()`` so backward stays exact —
    callers may use it unconditionally.
    """
    if _recording(x, weight, bias):
        return conv2d(
            x, weight, bias, stride=stride, padding=padding, scratch=scratch
        ).relu()
    stride = _pair(stride)
    padding = _pair(padding)
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {weight.shape[1]}"
        )
    return Tensor(
        _conv2d_forward(
            x.data, weight.data, None if bias is None else bias.data,
            stride, padding, activation="relu",
        )
    )


def conv2d_relu_pool(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    pool_kernel: IntPair = 2,
    pool_stride: IntPair = None,
    scratch: Optional[LayerScratch] = None,
) -> Tensor:
    """Fused conv → bias → ReLU → max-pool (the backbone's repeated stage).

    On the inference fast path, pooling runs in the GEMM's natural NHWC
    layout before the single transpose back to NCHW, so the full-size
    pre-pool activation never materializes in NCHW at all.  Requires a
    non-overlapping pool that evenly divides the conv output; callers
    with other geometry should compose :func:`conv2d_relu` and
    :func:`max_pool2d` instead (Sequential checks this).  When
    gradients are required this composes the reference ops, so backward
    stays exact.
    """
    pool_kernel = _pair(pool_kernel)
    pool_stride = pool_kernel if pool_stride is None else _pair(pool_stride)
    if pool_stride != pool_kernel:
        raise ValueError("fused pooling requires pool_stride == pool_kernel")
    if _recording(x, weight, bias):
        out = conv2d(
            x, weight, bias, stride=stride, padding=padding, scratch=scratch
        ).relu()
        return max_pool2d(out, pool_kernel, pool_stride)
    stride = _pair(stride)
    padding = _pair(padding)
    out_h = conv_output_size(x.shape[2], weight.shape[2], stride[0], padding[0])
    out_w = conv_output_size(x.shape[3], weight.shape[3], stride[1], padding[1])
    if out_h % pool_kernel[0] or out_w % pool_kernel[1]:
        raise ValueError(
            f"fused pooling requires the pool {pool_kernel} to evenly divide "
            f"the conv output ({out_h}, {out_w})"
        )
    return Tensor(
        _conv2d_forward(
            x.data, weight.data, None if bias is None else bias.data,
            stride, padding, activation="relu", pool_kernel=pool_kernel,
        )
    )


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    scratch: Optional[LayerScratch] = None,
) -> Tensor:
    """2-D transposed convolution ("deconvolution").

    The forward pass is the adjoint of :func:`conv2d` with the same
    geometry, so it is implemented directly with :func:`col2im`.

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Filters, shape ``(C_in, C_out, kh, kw)`` (note the transposed
        channel convention, matching PyTorch).
    scratch:
        Optional per-layer :class:`LayerScratch`, honoured inside
        :func:`train_scratch` blocks: backward's im2col of the incoming
        gradient and both GEMM outputs reuse layer-owned buffers.  The
        forward ``col2im`` output always stays freshly allocated — it
        escapes as tensor data.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = (h - 1) * stride[0] - 2 * padding[0] + kh
    out_w = (w - 1) * stride[1] - 2 * padding[1] + kw

    recording = _recording(x, weight, bias)
    pool = _scratch if (not recording and is_inference_mode()) else None
    w_mat = weight.data.reshape(c_in, c_out * kh * kw)  # (C_in, C_out*kh*kw)
    x_mat = x.data.transpose(0, 2, 3, 1).reshape(-1, c_in)  # (N*h*w, C_in)
    if pool is None:
        cols = x_mat @ w_mat  # (N*h*w, C_out*kh*kw)
    else:
        cols = pool.get((x_mat.shape[0], c_out * kh * kw), x.data.dtype)
        np.matmul(x_mat, w_mat, out=cols)
    out_data = col2im(cols, (n, c_out, out_h, out_w), (kh, kw), stride, padding)
    if not recording:
        if padding != (0, 0):
            out_data = np.ascontiguousarray(out_data)
        if bias is not None:
            out_data += bias.data.reshape(1, c_out, 1, 1)
        return Tensor(out_data)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    use_scratch = scratch is not None and _TrainScratchState.enabled

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if use_scratch:
            cols_buf = scratch.get(
                "grad_cols", (n, h * w, c_out * kh * kw), grad.dtype
            )
            grad_cols = im2col(grad, (kh, kw), stride, padding, out=cols_buf)
        else:
            grad_cols = im2col(grad, (kh, kw), stride, padding)
        # grad_cols: (N*h*w, C_out*kh*kw)
        if weight.requires_grad:
            if use_scratch:
                grad_w = scratch.get(
                    "grad_w", (c_in, c_out * kh * kw), grad.dtype
                )
                np.matmul(x_mat.T, grad_cols, out=grad_w)
            else:
                grad_w = x_mat.T @ grad_cols  # (C_in, C_out*kh*kw)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            if use_scratch:
                grad_x = scratch.get("grad_x", (n * h * w, c_in), grad.dtype)
                np.matmul(grad_cols, w_mat.T, out=grad_x)
            else:
                grad_x = grad_cols @ w_mat.T  # (N*h*w, C_in)
            x._accumulate(grad_x.reshape(n, h, w, c_in).transpose(0, 3, 1, 2))

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: IntPair = 2, stride: IntPair = None) -> Tensor:
    """Max pooling over non-overlapping (by default) windows.

    Window geometry follows the paper: every conv layer is followed by a
    2x2 max-pool.  Inputs whose spatial size is not divisible by the
    stride are truncated (floor semantics), matching common frameworks.
    """
    kernel = _pair(kernel)
    if stride is None:
        stride = kernel
    stride = _pair(stride)
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    if not _recording(x):
        # Fast path: slice-wise window max, no argmax bookkeeping (only
        # backward needs the winner coordinates).
        return Tensor(_pool_max_slices(x.data, kernel, stride))
    windows = _strided_windows(x.data, kernel, stride)
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        if (sh, sw) == (kh, kw):
            # Non-overlapping windows: every input cell belongs to at
            # most one window, so the winner scatter is a plain
            # put_along_axis into per-window slots — far cheaper than
            # the general np.add.at gather-scatter below.
            slots = np.zeros((n, c, out_h, out_w, kh * kw), dtype=grad.dtype)
            np.put_along_axis(slots, argmax[..., None], grad[..., None], axis=-1)
            block = (
                slots.reshape(n, c, out_h, out_w, kh, kw)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(n, c, out_h * kh, out_w * kw)
            )
            if block.shape[2:] == (h, w):
                grad_x = block
            else:  # floor-truncated tail rows/cols received no gradient
                grad_x = np.zeros_like(x.data)
                grad_x[:, :, : out_h * kh, : out_w * kw] = block
            x._accumulate(grad_x)
            return
        grad_x = np.zeros_like(x.data)
        # Decode flat window argmax back to input coordinates.
        ki, kj = np.unravel_index(argmax, (kh, kw))
        n_idx, c_idx, i_idx, j_idx = np.indices(argmax.shape)
        rows = i_idx * sh + ki
        cols = j_idx * sw + kj
        np.add.at(grad_x, (n_idx, c_idx, rows, cols), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair = 2, stride: IntPair = None) -> Tensor:
    """Average pooling; used by ablation variants of the architecture."""
    kernel = _pair(kernel)
    if stride is None:
        stride = kernel
    stride = _pair(stride)
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    scale = x.data.dtype.type(1.0 / (kh * kw))
    if not _recording(x):
        # Fast path: slice-wise accumulation, same rationale as max-pool.
        total: Optional[np.ndarray] = None
        for i in range(kh):
            for j in range(kw):
                piece = x.data[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw]
                if total is None:
                    total = np.ascontiguousarray(piece)
                else:
                    total += piece
        total *= scale
        return Tensor(total)
    windows = _strided_windows(x.data, kernel, stride)
    out_data = windows.mean(axis=(-1, -2), dtype=x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        for i in range(kh):
            for j in range(kw):
                grad_x[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw] += grad * scale
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def upsample2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling by an integer factor.

    This is the "upsampling" stage of the decoder in the paper's
    convolutional auto-encoder (Fig. 3), mirroring the encoder's 2x2
    max-pool.
    """
    if scale < 1:
        raise ValueError("scale must be a positive integer")
    out_data = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    if not _recording(x):
        return Tensor(out_data)
    n, c, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        reshaped = grad.reshape(n, c, h, scale, w, scale)
        x._accumulate(reshaped.sum(axis=(3, 5)))

    return Tensor._make(out_data, (x,), backward)
