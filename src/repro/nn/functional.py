"""Spatial operations for the autograd engine.

Implements 2-D convolution, transposed convolution, max pooling, and
nearest-neighbour upsampling as tape-aware operations on
:class:`~repro.nn.tensor.Tensor`.  Convolution uses the classic
im2col/col2im reduction to matrix multiplication, which is the fastest
strategy available in pure numpy.

All spatial tensors use the NCHW layout: ``(batch, channels, height,
width)``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "upsample2d",
    "conv_output_size",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Unfold sliding windows of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Convolution geometry, each an ``(h, w)`` pair.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(N * out_h * out_w, C * kh * kw)`` whose rows
        are flattened receptive fields.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * sh,
            strides[3] * sw,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> rows of receptive fields.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    reshaped = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # reshaped: (N, C, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += reshaped[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph:h + ph, pw:w + pw]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Filters, shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-output-channel bias, shape ``(C_out,)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N*oh*ow, C*kh*kw)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = cols @ w_mat.T  # (N*oh*ow, C_out)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        # grad: (N, C_out, oh, ow) -> (N*oh*ow, C_out)
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if weight.requires_grad:
            grad_w = grad_mat.T @ cols  # (C_out, C*kh*kw)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = grad_mat @ w_mat  # (N*oh*ow, C*kh*kw)
            x._accumulate(col2im(grad_cols, x.shape, (kh, kw), stride, padding))

    return Tensor._make(out_data, parents, backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D transposed convolution ("deconvolution").

    The forward pass is the adjoint of :func:`conv2d` with the same
    geometry, so it is implemented directly with :func:`col2im`.

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Filters, shape ``(C_in, C_out, kh, kw)`` (note the transposed
        channel convention, matching PyTorch).
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = (h - 1) * stride[0] - 2 * padding[0] + kh
    out_w = (w - 1) * stride[1] - 2 * padding[1] + kw

    w_mat = weight.data.reshape(c_in, c_out * kh * kw)  # (C_in, C_out*kh*kw)
    x_mat = x.data.transpose(0, 2, 3, 1).reshape(-1, c_in)  # (N*h*w, C_in)
    cols = x_mat @ w_mat  # (N*h*w, C_out*kh*kw)
    out_data = col2im(cols, (n, c_out, out_h, out_w), (kh, kw), stride, padding)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        grad_cols = im2col(grad, (kh, kw), stride, padding)  # (N*h*w, C_out*kh*kw)
        if weight.requires_grad:
            grad_w = x_mat.T @ grad_cols  # (C_in, C_out*kh*kw)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_x = grad_cols @ w_mat.T  # (N*h*w, C_in)
            x._accumulate(grad_x.reshape(n, h, w, c_in).transpose(0, 3, 1, 2))

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: IntPair = 2, stride: IntPair = None) -> Tensor:
    """Max pooling over non-overlapping (by default) windows.

    Window geometry follows the paper: every conv layer is followed by a
    2x2 max-pool.  Inputs whose spatial size is not divisible by the
    stride are truncated (floor semantics), matching common frameworks.
    """
    kernel = _pair(kernel)
    if stride is None:
        stride = kernel
    stride = _pair(stride)
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * sh,
            strides[3] * sw,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        # Decode flat window argmax back to input coordinates.
        ki, kj = np.unravel_index(argmax, (kh, kw))
        n_idx, c_idx, i_idx, j_idx = np.indices(argmax.shape)
        rows = i_idx * sh + ki
        cols = j_idx * sw + kj
        np.add.at(grad_x, (n_idx, c_idx, rows, cols), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair = 2, stride: IntPair = None) -> Tensor:
    """Average pooling; used by ablation variants of the architecture."""
    kernel = _pair(kernel)
    if stride is None:
        stride = kernel
    stride = _pair(stride)
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * sh,
            strides[3] * sw,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    out_data = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        for i in range(kh):
            for j in range(kw):
                grad_x[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw] += grad * scale
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def upsample2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling by an integer factor.

    This is the "upsampling" stage of the decoder in the paper's
    convolutional auto-encoder (Fig. 3), mirroring the encoder's 2x2
    max-pool.
    """
    if scale < 1:
        raise ValueError("scale must be a positive integer")
    out_data = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    n, c, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        reshaped = grad.reshape(n, c, h, scale, w, scale)
        x._accumulate(reshaped.sum(axis=(3, 5)))

    return Tensor._make(out_data, (x,), backward)
