"""Weight initialization schemes.

Provides the standard variance-preserving initializers.  The CNN and
auto-encoder in this reproduction use He (Kaiming) initialization for
ReLU stacks and Glorot (Xavier) for the linear output heads, which is
the conventional pairing for the architectures in the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "compute_fans",
    "he_normal",
    "he_uniform",
    "glorot_normal",
    "glorot_uniform",
    "zeros",
    "normal",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a dense or convolutional weight.

    Dense weights have shape ``(in, out)``; conv weights have shape
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = int(np.prod(shape[2:]))
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming-normal: ``std = sqrt(2 / fan_in)`` — for ReLU layers."""
    fan_in, _ = compute_fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming-uniform: bound ``sqrt(6 / fan_in)``."""
    fan_in, _ = compute_fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier-normal: ``std = sqrt(2 / (fan_in + fan_out))``."""
    fan_in, fan_out = compute_fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier-uniform: bound ``sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = compute_fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator = None) -> np.ndarray:
    """All-zeros; the default for biases."""
    return np.zeros(shape, dtype=np.float32)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain Gaussian initializer with configurable scale."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "glorot_normal": glorot_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initializer by name, raising a clear error if unknown."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(INITIALIZERS))
        raise ValueError(f"unknown initializer {name!r}; expected one of: {known}") from None
