"""A self-contained numpy deep-learning framework.

This package is the substrate the paper's models are built on: since no
GPU deep-learning stack is available offline, the reproduction
implements reverse-mode autodiff, convolutional layers, losses, and
optimizers directly on numpy.

Quick tour
----------
>>> import numpy as np
>>> from repro import nn
>>> rng = np.random.default_rng(0)
>>> model = nn.Sequential(
...     nn.Conv2D(1, 4, 3, rng=rng), nn.ReLU(), nn.MaxPool2D(2),
...     nn.Flatten(), nn.Dense(4 * 15 * 15, 3, rng=rng),
... )
>>> x = nn.Tensor(rng.normal(size=(2, 1, 32, 32)).astype("float32"))
>>> logits = model(x)
>>> loss = nn.cross_entropy(logits, np.array([0, 2]))
>>> loss.backward()
"""

from . import functional, init, losses, optim
from . import compile  # noqa: A004 - nn.compile(model) is the entry point
from .layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    ConvTranspose2D,
    Dense,
    Dropout,
    Flatten,
    HookHandle,
    LeakyReLU,
    LogSoftmax,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    UpSample2D,
)
from .losses import binary_cross_entropy, cross_entropy, mse_loss, nll_loss, one_hot
from .optim import SGD, Adam, ConstantLR, CosineLR, ExponentialLR, RMSProp, StepLR
from .functional import free_inference_scratch, train_scratch
from .serialization import load_model, load_optimizer, save_model, save_optimizer
from .tensor import (
    Tensor,
    concatenate,
    default_dtype,
    get_default_dtype,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    set_default_dtype,
    stack,
)

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "stack",
    "concatenate",
    "compile",
    "functional",
    "init",
    "losses",
    "optim",
    "Module",
    "Parameter",
    "HookHandle",
    "Sequential",
    "Conv2D",
    "ConvTranspose2D",
    "Dense",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "UpSample2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "LogSoftmax",
    "Dropout",
    "BatchNorm1D",
    "BatchNorm2D",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy",
    "one_hot",
    "SGD",
    "Adam",
    "RMSProp",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "CosineLR",
    "save_model",
    "save_optimizer",
    "load_optimizer",
    "train_scratch",
    "free_inference_scratch",
    "load_model",
]
