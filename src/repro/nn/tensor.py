"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the :mod:`repro.nn` deep-learning
substrate.  It provides a :class:`Tensor` type that wraps a
``numpy.ndarray`` and records the operations applied to it on a dynamic
tape, so that calling :meth:`Tensor.backward` propagates gradients to
every tensor created with ``requires_grad=True``.

The design mirrors the classic define-by-run autograd found in PyTorch,
scaled down to exactly what the wafer-map classification models need:

* elementwise arithmetic with full numpy broadcasting,
* matrix multiplication,
* reductions (``sum``, ``mean``, ``max``),
* shape manipulation (``reshape``, ``transpose``, slicing, concat, pad),
* elementwise nonlinearities (``exp``, ``log``, ``relu``, ``sigmoid``,
  ``tanh``),
* numerically stable ``log_softmax``.

Convolution and pooling live in :mod:`repro.nn.functional` and plug into
the same tape via the same primitives used here.

Example
-------
>>> from repro.nn.tensor import Tensor
>>> x = Tensor([[1.0, 2.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0]]
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "stack",
    "concatenate",
]

ArrayLike = Union[np.ndarray, float, int, list, tuple]


class _GradMode:
    """Process-wide switch that disables tape recording inside ``no_grad``."""

    enabled = True


class _InferenceMode:
    """Process-wide switch for the serving fast path (``inference_mode``)."""

    active = False


class _DtypeState:
    """Process-wide default floating dtype for new tensors."""

    dtype = np.dtype(np.float32)


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation and data generation, where building the tape
    would waste time and memory.

    >>> with no_grad():
    ...     z = x * 2          # doctest: +SKIP
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GradMode.enabled = self._prev


class inference_mode(no_grad):
    """The serving fast path: ``no_grad`` plus layout/fusion optimizations.

    Inside this context, no backward closures are ever constructed, and
    the spatial operators in :mod:`repro.nn.functional` are allowed to

    * reuse process-wide im2col/col2im scratch buffers instead of
      allocating fresh ones per call,
    * fuse conv → bias → ReLU into a single in-place pass
      (:class:`~repro.nn.layers.container.Sequential` performs the
      pairing), and
    * skip the argmax bookkeeping in pooling that only backward needs.

    The numerical results are identical to the reference tape path up
    to floating-point associativity (the parity tests in
    ``tests/nn/test_parity.py`` pin this down); only speed and memory
    behaviour differ.  Every batched ``predict`` in :mod:`repro.core`
    runs under this context.

    Not thread-safe (like ``no_grad``): the flag is process-global.
    """

    def __enter__(self) -> "inference_mode":
        super().__enter__()
        self._prev_inference = _InferenceMode.active
        _InferenceMode.active = True
        return self

    def __exit__(self, *exc) -> None:
        _InferenceMode.active = self._prev_inference
        super().__exit__(*exc)


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return _GradMode.enabled


def is_inference_mode() -> bool:
    """Return whether the :class:`inference_mode` fast path is active."""
    return _InferenceMode.active


def get_default_dtype() -> np.dtype:
    """The floating dtype new tensors are coerced to (float32 unless changed)."""
    return _DtypeState.dtype


def set_default_dtype(dtype) -> None:
    """Set the process-wide default floating dtype for new tensors.

    The substrate runs in float32 by default; float64 is the opt-in
    verification mode (tight gradchecks, parity references).  Prefer the
    scoped :class:`default_dtype` context over calling this directly.
    """
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise TypeError(f"default dtype must be floating, got {dtype}")
    _DtypeState.dtype = dtype


class default_dtype:
    """Context manager scoping :func:`set_default_dtype`.

    >>> with default_dtype(np.float64):
    ...     x = Tensor([1.0])    # doctest: +SKIP
    """

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)

    def __enter__(self) -> "default_dtype":
        self._prev = _DtypeState.dtype
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        _DtypeState.dtype = self._prev


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if dtype is None:
        dtype = _DtypeState.dtype
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, reversing numpy broadcasting.

    Broadcasting can prepend axes and stretch size-1 axes; the adjoint of
    a broadcast is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; converted to the default floating dtype
        (float32 unless changed via :func:`default_dtype`).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    dtype:
        Explicit dtype for the payload, overriding the process default.

    Notes
    -----
    Tensors form a DAG: each tensor produced by an operation keeps
    references to its parents and a backward closure.  ``backward()``
    topologically sorts the DAG and applies the chain rule.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
        dtype=None,
    ) -> None:
        self.data: np.ndarray = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GradMode.enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype``.

        Casting is an inference/verification operation, so the result is
        cut from the tape (gradients do not flow through ``astype``).
        """
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def _recording(self) -> bool:
        """Whether an op on this tensor must build a backward closure."""
        return _GradMode.enabled and self.requires_grad

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset the accumulated gradient.

        With ``set_to_none=False`` an existing gradient buffer is zeroed
        in place and kept, so the next backward pass accumulates into
        the same memory instead of allocating a fresh array per batch
        (the training hot loop uses this).
        """
        if set_to_none or self.grad is None:
            self.grad = None
        else:
            self.grad.fill(0)

    # ------------------------------------------------------------------
    # Tape plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a tensor node wired into the tape (if grad is enabled)."""
        out = Tensor(data)
        if _GradMode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required
            for non-scalars.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free the tape as we go: interior nodes keep their grads
                # only while needed.
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        if not self._recording():
            # Fast path: single in-register pass, no mask retained.
            return Tensor(np.maximum(self.data, 0))
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype)
        out_data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
            np.exp(np.clip(self.data, -60, 60)) / (1.0 + np.exp(np.clip(self.data, -60, 60))),
        ).astype(self.data.dtype)
        if not self._recording():
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is 1 inside the range."""
        out_data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable ``log(softmax(x))`` along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        log_sum = np.log(exp.sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        if not self._recording():
            return Tensor(out_data)
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        if not self._recording():
            shifted = self.data - self.data.max(axis=axis, keepdims=True)
            np.exp(shifted, out=shifted)
            shifted /= shifted.sum(axis=axis, keepdims=True)
            return Tensor(shifted)
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                g = g.reshape(shape)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                g = g.reshape(shape)
                o = o.reshape(shape)
            mask = (self.data == o).astype(self.data.dtype)
            # Split gradient equally among ties, matching subgradient choice.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing spatial axes of an NCHW tensor."""
        if padding == 0:
            return self
        p = padding
        out_data = np.pad(self.data, ((0, 0), (0, 0), (p, p), (p, p)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[:, :, p:-p, p:-p])

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)
