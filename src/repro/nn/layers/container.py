"""Module containers."""

from __future__ import annotations

from typing import Iterator

from ..tensor import Tensor
from .base import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Chain of modules applied in order.

    >>> model = Sequential(Conv2D(1, 8, 3), ReLU(), Flatten())  # doctest: +SKIP
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
        self._layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def append(self, module: Module) -> "Sequential":
        """Add a module to the end of the chain."""
        setattr(self, f"layer{len(self._layers)}", module)
        self._layers.append(module)
        return self
