"""Module containers."""

from __future__ import annotations

from typing import Iterator

from .. import functional as F
from ..tensor import Tensor, is_inference_mode
from .activations import ReLU
from .base import Module
from .conv import Conv2D
from .pooling import MaxPool2D

__all__ = ["Sequential"]


def _hooked(*modules: Module) -> bool:
    return any(m.__dict__.get("_hooks") for m in modules)


class Sequential(Module):
    """Chain of modules applied in order.

    Under :class:`~repro.nn.tensor.inference_mode`, a ``Conv2D``
    directly followed by a ``ReLU`` is executed as one fused
    conv → bias → ReLU pass (:meth:`Conv2D.forward_fused`), skipping
    the intermediate pre-activation allocation.  Fusion is disabled for
    pairs that carry timing hooks so per-layer profiling stays exact.

    >>> model = Sequential(Conv2D(1, 8, 3), ReLU(), Flatten())  # doctest: +SKIP
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
        self._layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        if is_inference_mode():
            return self._forward_inference(x)
        for layer in self._layers:
            x = layer(x)
        return x

    def _forward_inference(self, x: Tensor) -> Tensor:
        layers = self._layers
        count = len(layers)
        index = 0
        while index < count:
            layer = layers[index]
            if (
                index + 1 < count
                and isinstance(layer, Conv2D)
                and type(layers[index + 1]) is ReLU
                and not _hooked(layer, layers[index + 1])
            ):
                pool = layers[index + 2] if index + 2 < count else None
                if (
                    type(pool) is MaxPool2D
                    and pool.stride == pool.kernel_size
                    and not _hooked(pool)
                    and self._pool_divides(layer, pool, x)
                ):
                    x = F.conv2d_relu_pool(
                        x, layer.weight, layer.bias,
                        stride=layer.stride, padding=layer.padding,
                        pool_kernel=pool.kernel_size,
                    )
                    index += 3
                else:
                    x = layer.forward_fused(x)
                    index += 2
            else:
                x = layer(x)
                index += 1
        return x

    @staticmethod
    def _pool_divides(conv: Conv2D, pool: MaxPool2D, x: Tensor) -> bool:
        """Whether ``pool`` tiles ``conv``'s output exactly (fusable)."""
        out_h, out_w = conv.output_shape((x.shape[2], x.shape[3]))
        return out_h % pool.kernel_size[0] == 0 and out_w % pool.kernel_size[1] == 0

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def append(self, module: Module) -> "Sequential":
        """Add a module to the end of the chain."""
        setattr(self, f"layer{len(self._layers)}", module)
        self._layers.append(module)
        return self
