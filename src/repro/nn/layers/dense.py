"""Fully-connected (dense) layer and Flatten."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import init as init_module
from ..tensor import Tensor, is_grad_enabled
from .base import Module, Parameter

__all__ = ["Dense", "Flatten"]


class Dense(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learned bias (default True).
    weight_init:
        Name of an initializer from :mod:`repro.nn.init`.
    rng:
        Numpy random generator used for weight initialization; pass an
        explicitly seeded generator for reproducible models.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        initializer = init_module.get_initializer(weight_init)
        self.weight = Parameter(initializer((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init_module.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected last dim {self.in_features}, got input shape {x.shape}"
            )
        if not (is_grad_enabled() and (x.requires_grad or self.weight.requires_grad)):
            # Fast path: one GEMM, bias added in place, no tape nodes.
            out = x.data @ self.weight.data
            if self.bias is not None:
                out += self.bias.data
            return Tensor(out)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Dense(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Flatten(Module):
    """Collapse all axes but the batch axis into one."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"
