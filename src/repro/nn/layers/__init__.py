"""Neural-network layers for the numpy deep-learning substrate."""

from .activations import LeakyReLU, LogSoftmax, ReLU, Sigmoid, Softmax, Tanh
from .base import HookHandle, Module, Parameter
from .container import Sequential
from .conv import Conv2D, ConvTranspose2D
from .dense import Dense, Flatten
from .pooling import AvgPool2D, MaxPool2D, UpSample2D
from .regularization import BatchNorm1D, BatchNorm2D, Dropout

__all__ = [
    "Module",
    "Parameter",
    "HookHandle",
    "Sequential",
    "Conv2D",
    "ConvTranspose2D",
    "Dense",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "UpSample2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "LogSoftmax",
    "Dropout",
    "BatchNorm1D",
    "BatchNorm2D",
]
