"""Module and Parameter abstractions.

A :class:`Module` is a named container of :class:`Parameter` tensors and
child modules, with train/eval mode propagation and a recursive
``state_dict`` for serialization — the minimal subset of the familiar
PyTorch ``nn.Module`` contract that the reproduction needs.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "HookHandle"]

#: Signature of a module hook: ``hook(module, event, seconds)`` where
#: ``event`` is ``"forward"`` (one call per forward pass) or
#: ``"backward"`` (one call per tape operation owned by the module).
ModuleHook = Callable[["Module", str, float], None]


class HookHandle:
    """Detaches a hook registered with :meth:`Module.register_hook`.

    Removing the last hook restores the module's unhooked fast path, so
    an uninstalled profiler leaves zero per-call overhead behind.
    """

    def __init__(self, module: "Module", key: int) -> None:
        self._module = module
        self._key = key

    def remove(self) -> None:
        hooks = self._module.__dict__.get("_hooks")
        if hooks is not None:
            hooks.pop(self._key, None)
            if not hooks:
                object.__setattr__(self._module, "_hooks", None)

    @property
    def active(self) -> bool:
        hooks = self._module.__dict__.get("_hooks")
        return bool(hooks) and self._key in hooks


def _timed_backward(
    fn: Callable[[np.ndarray], None], module: "Module", hooks: tuple
) -> Callable[[np.ndarray], None]:
    """Wrap one backward closure so its wall-clock reports to ``hooks``."""

    def timed(grad: np.ndarray) -> None:
        started = time.perf_counter()
        fn(grad)
        elapsed = time.perf_counter() - started
        for hook in hooks:
            hook(module, "backward", elapsed)

    return timed


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers and models.

    Subclasses implement :meth:`forward`; parameters assigned as
    attributes (or inside child modules) are discovered automatically.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True
        self._hooks: "Optional[OrderedDict[int, ModuleHook]]" = None
        self._hook_counter = 0

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if self.__dict__.get("_hooks"):
            return self._forward_hooked(args, kwargs)
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Timing hooks
    # ------------------------------------------------------------------
    def register_hook(self, hook: ModuleHook) -> HookHandle:
        """Attach a forward/backward timing hook to this module.

        ``hook(module, event, seconds)`` is invoked with
        ``event="forward"`` once per forward pass (wall-clock of the
        whole :meth:`forward` call), and ``event="backward"`` once per
        tape operation created by that forward pass when gradients flow
        back through it.  Summing the backward events therefore yields
        the module's total backward time.

        Hooks are only consulted on the ``__call__`` path; with no hook
        registered the forward fast path performs no timing calls.
        Returns a :class:`HookHandle` whose ``remove()`` detaches it.
        """
        if not callable(hook):
            raise TypeError("hook must be callable")
        hooks = self.__dict__.get("_hooks")
        if hooks is None:
            hooks = OrderedDict()
            object.__setattr__(self, "_hooks", hooks)
        key = self.__dict__.get("_hook_counter", 0)
        object.__setattr__(self, "_hook_counter", key + 1)
        hooks[key] = hook
        return HookHandle(self, key)

    def remove_hooks(self) -> None:
        """Detach every hook registered on this module (not children)."""
        object.__setattr__(self, "_hooks", None)

    def _forward_hooked(self, args: tuple, kwargs: dict):
        hooks = tuple(self._hooks.values())
        started = time.perf_counter()
        output = self.forward(*args, **kwargs)
        elapsed = time.perf_counter() - started
        for hook in hooks:
            hook(self, "forward", elapsed)
        self._instrument_backward(args, kwargs, output, hooks)
        return output

    def _instrument_backward(self, args: tuple, kwargs: dict, output, hooks: tuple) -> None:
        """Wrap the backward closures of tensors this forward created.

        Walks the tape from the output(s) back to the call's input
        tensors; every operation in between belongs to this module, so
        timing its backward closure attributes backward cost here.
        Under ``no_grad`` the walk terminates immediately (no parents).
        """
        stop = {id(a) for a in args if isinstance(a, Tensor)}
        stop.update(id(v) for v in kwargs.values() if isinstance(v, Tensor))
        outputs = output if isinstance(output, (tuple, list)) else (output,)
        stack = [t for t in outputs if isinstance(t, Tensor) and id(t) not in stop]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node._backward is not None:
                node._backward = _timed_backward(node._backward, self, hooks)
            for parent in node._parents:
                if id(parent) not in seen and id(parent) not in stop:
                    stack.append(parent)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters, depth-first, in stable order."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects Dropout / BatchNorm)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Dtype control
    # ------------------------------------------------------------------
    def astype(self, dtype) -> "Module":
        """Cast every parameter, gradient, and buffer in place to ``dtype``.

        The substrate runs float32 by default; casting to ``np.float64``
        is the opt-in verification mode (tight gradchecks and parity
        references — pair it with
        :class:`~repro.nn.tensor.default_dtype` so inputs and
        intermediate coercions match).  Returns ``self`` for chaining.
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise TypeError(f"Module.astype requires a floating dtype, got {dtype}")
        for param in self.parameters():
            param.data = param.data.astype(dtype)
            if param.grad is not None:
                param.grad = param.grad.astype(dtype)
        for module in self.modules():
            buffers = getattr(module, "_buffers", None)
            if buffers:
                for name, value in buffers.items():
                    buffers[name] = value.astype(dtype)
        return self

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad(set_to_none)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of dotted parameter names to arrays.

        Buffers (e.g. batch-norm running statistics) are included via
        the ``_buffers`` convention used by :class:`BatchNorm2D`.
        """
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield non-trainable persistent arrays (running stats etc.)."""
        buffers = getattr(self, "_buffers", None)
        if buffers:
            for name, value in buffers.items():
                yield (f"{prefix}{name}", value)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        buffers = {}
        for module_prefix, module in self._walk_with_prefix():
            module_buffers = getattr(module, "_buffers", None)
            if module_buffers:
                for name in module_buffers:
                    buffers[f"{module_prefix}{name}"] = (module, name)
        for key, value in state.items():
            if key in params:
                if params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"model has {params[key].shape}, state has {value.shape}"
                    )
                params[key].data = value.astype(params[key].dtype).copy()
            elif key in buffers:
                module, name = buffers[key]
                module._buffers[name] = value.copy()
            else:
                raise KeyError(f"unexpected key in state dict: {key!r}")
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")

    def _walk_with_prefix(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix, self)
        for child_name, child in self._modules.items():
            yield from child._walk_with_prefix(prefix=f"{prefix}{child_name}.")

    def __repr__(self) -> str:
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
