"""Module and Parameter abstractions.

A :class:`Module` is a named container of :class:`Parameter` tensors and
child modules, with train/eval mode propagation and a recursive
``state_dict`` for serialization — the minimal subset of the familiar
PyTorch ``nn.Module`` contract that the reproduction needs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers and models.

    Subclasses implement :meth:`forward`; parameters assigned as
    attributes (or inside child modules) are discovered automatically.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters, depth-first, in stable order."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects Dropout / BatchNorm)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of dotted parameter names to arrays.

        Buffers (e.g. batch-norm running statistics) are included via
        the ``_buffers`` convention used by :class:`BatchNorm2D`.
        """
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield non-trainable persistent arrays (running stats etc.)."""
        buffers = getattr(self, "_buffers", None)
        if buffers:
            for name, value in buffers.items():
                yield (f"{prefix}{name}", value)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        buffers = {}
        for module_prefix, module in self._walk_with_prefix():
            module_buffers = getattr(module, "_buffers", None)
            if module_buffers:
                for name in module_buffers:
                    buffers[f"{module_prefix}{name}"] = (module, name)
        for key, value in state.items():
            if key in params:
                if params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"model has {params[key].shape}, state has {value.shape}"
                    )
                params[key].data = value.astype(params[key].dtype).copy()
            elif key in buffers:
                module, name = buffers[key]
                module._buffers[name] = value.copy()
            else:
                raise KeyError(f"unexpected key in state dict: {key!r}")
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")

    def _walk_with_prefix(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix, self)
        for child_name, child in self._modules.items():
            yield from child._walk_with_prefix(prefix=f"{prefix}{child_name}.")

    def __repr__(self) -> str:
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
