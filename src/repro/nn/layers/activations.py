"""Activation layers as thin Module wrappers over Tensor methods."""

from __future__ import annotations

from ..tensor import Tensor
from .base import Module

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax", "LogSoftmax"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Module):
    """Logistic sigmoid; the paper's selection head uses one of these."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Softmax(Module):
    """Softmax over a given axis (default: class axis)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)

    def __repr__(self) -> str:
        return f"Softmax(axis={self.axis})"


class LogSoftmax(Module):
    """Log-softmax over a given axis."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.log_softmax(axis=self.axis)

    def __repr__(self) -> str:
        return f"LogSoftmax(axis={self.axis})"
