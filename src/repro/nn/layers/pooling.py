"""Pooling and upsampling layers."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .. import functional as F
from ..tensor import Tensor
from .base import Module

__all__ = ["MaxPool2D", "AvgPool2D", "UpSample2D"]

IntPair = Union[int, Tuple[int, int]]


class MaxPool2D(Module):
    """Max pooling layer; the paper pairs 2x2 max-pool with every conv."""

    def __init__(self, kernel_size: IntPair = 2, stride: Optional[IntPair] = None) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2D(Module):
    """Average pooling layer (used in architecture ablations)."""

    def __init__(self, kernel_size: IntPair = 2, stride: Optional[IntPair] = None) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class UpSample2D(Module):
    """Nearest-neighbour upsampling, the decoder counterpart of max-pool."""

    def __init__(self, scale: int = 2) -> None:
        super().__init__()
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = int(scale)

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample2d(x, self.scale)

    def __repr__(self) -> str:
        return f"UpSample2D(scale={self.scale})"
