"""Convolutional layers (NCHW layout)."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .. import functional as F
from .. import init as init_module
from ..tensor import Tensor
from .base import Module, Parameter

__all__ = ["Conv2D", "ConvTranspose2D"]

IntPair = Union[int, Tuple[int, int]]


class Conv2D(Module):
    """2-D convolution layer.

    The paper's core CNN (Table I) stacks three of these: 64 filters of
    5x5, then 32 of 3x3, then 32 of 3x3, each followed by 2x2 max-pool.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Filter size, int or ``(kh, kw)``.
    stride, padding:
        Convolution geometry.  ``padding="same"`` computes the padding
        that preserves spatial size for odd kernels at stride 1.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: Union[IntPair, str] = 0,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        if padding == "same":
            if F._pair(stride) != (1, 1):
                raise ValueError('padding="same" requires stride 1')
            if kh % 2 == 0 or kw % 2 == 0:
                raise ValueError('padding="same" requires odd kernel sizes')
            padding = (kh // 2, kw // 2)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        initializer = init_module.get_initializer(weight_init)
        self.weight = Parameter(
            initializer((out_channels, in_channels, kh, kw), rng), name="weight"
        )
        self.bias = Parameter(init_module.zeros((out_channels,)), name="bias") if bias else None
        # Layer-owned training scratch (honoured under F.train_scratch()).
        self._scratch = F.LayerScratch()

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias,
            stride=self.stride, padding=self.padding, scratch=self._scratch,
        )

    def forward_fused(self, x: Tensor) -> Tensor:
        """Conv → bias → ReLU in one pass (see :func:`F.conv2d_relu`).

        :class:`~repro.nn.layers.container.Sequential` routes a
        ``Conv2D`` directly followed by a ``ReLU`` through this method
        under :class:`~repro.nn.tensor.inference_mode`; the fusion is
        gradient-exact when recording, so it is safe to call anywhere.
        """
        return F.conv2d_relu(
            x, self.weight, self.bias,
            stride=self.stride, padding=self.padding, scratch=self._scratch,
        )

    def output_shape(self, input_shape: Tuple[int, int]) -> Tuple[int, int]:
        """Spatial output shape for a given ``(H, W)`` input."""
        h, w = input_shape
        return (
            F.conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding[0]),
            F.conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding[1]),
        )

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class ConvTranspose2D(Module):
    """2-D transposed convolution ("deconvolution").

    Used by the auto-encoder decoder (Fig. 3), where the paper mirrors
    the encoder by replacing convolution with deconvolution.  Weight
    shape follows the ``(in_channels, out_channels, kh, kw)`` convention.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        initializer = init_module.get_initializer(weight_init)
        self.weight = Parameter(
            initializer((in_channels, out_channels, kh, kw), rng), name="weight"
        )
        self.bias = Parameter(init_module.zeros((out_channels,)), name="bias") if bias else None
        self._scratch = F.LayerScratch()

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(
            x, self.weight, self.bias,
            stride=self.stride, padding=self.padding, scratch=self._scratch,
        )

    def __repr__(self) -> str:
        return (
            f"ConvTranspose2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )
