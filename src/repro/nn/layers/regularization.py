"""Regularization layers: Dropout and BatchNorm."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, is_grad_enabled
from .base import Module, Parameter

__all__ = ["Dropout", "BatchNorm2D", "BatchNorm1D"]


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode.

    Parameters
    ----------
    rate:
        Probability of zeroing each activation (0 <= rate < 1).
    rng:
        Generator driving the masks; seed it for reproducible training.
    """

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class _BatchNormBase(Module):
    """Shared machinery for 1-D and 2-D batch normalization."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32), name="gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32), name="beta")
        self._buffers = {
            "running_mean": np.zeros(num_features, dtype=np.float32),
            "running_var": np.ones(num_features, dtype=np.float32),
        }

    def _normalize(self, x: Tensor, axes, shape) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            m = self._buffers["running_mean"]
            v = self._buffers["running_var"]
            self._buffers["running_mean"] = (1 - self.momentum) * m + self.momentum * mean
            self._buffers["running_var"] = (1 - self.momentum) * v + self.momentum * var
            # Differentiable normalization using batch statistics.
            mean_t = x.mean(axis=axes, keepdims=True)
            centered = x - mean_t
            var_t = (centered * centered).mean(axis=axes, keepdims=True)
            normed = centered * ((var_t + self.eps) ** -0.5)
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
            if not (is_grad_enabled() and (x.requires_grad or self.gamma.requires_grad)):
                # Fast path: fold running stats and the affine transform
                # into one per-feature scale/shift, applied in two passes.
                scale = self.gamma.data * (var + self.eps) ** -0.5
                shift = self.beta.data - mean * scale
                return Tensor(x.data * scale.reshape(shape) + shift.reshape(shape))
            normed = (x - Tensor(mean.reshape(shape))) * Tensor(
                (var.reshape(shape) + self.eps) ** -0.5
            )
        return normed * self.gamma.reshape(shape) + self.beta.reshape(shape)


class BatchNorm2D(_BatchNormBase):
    """Batch normalization over NCHW activations (per channel)."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2D expects NCHW input, got shape {x.shape}")
        return self._normalize(x, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))

    def __repr__(self) -> str:
        return f"BatchNorm2D(num_features={self.num_features})"


class BatchNorm1D(_BatchNormBase):
    """Batch normalization over (N, F) activations (per feature)."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1D expects (N, F) input, got shape {x.shape}")
        return self._normalize(x, axes=(0,), shape=(1, self.num_features))

    def __repr__(self) -> str:
        return f"BatchNorm1D(num_features={self.num_features})"
