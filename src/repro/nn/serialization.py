"""Model and optimizer checkpointing to ``.npz`` files.

Writes go through :func:`repro.resilience.atomic_savez` (tmp + fsync +
rename), so a crash mid-save leaves the previous archive intact, never
a torn one.  Loads re-raise any unreadable/truncated-archive failure as
:class:`repro.resilience.IntegrityError` *before* touching the target
object — a corrupt file can never half-load a model.
"""

from __future__ import annotations

import os
import zipfile
from typing import Dict, Union

import numpy as np

from ..resilience.atomic import IntegrityError, atomic_savez
from .layers.base import Module
from .optim import Optimizer

__all__ = [
    "save_model",
    "load_model",
    "save_optimizer",
    "load_optimizer",
    "IntegrityError",
]

PathLike = Union[str, "os.PathLike[str]"]


def _read_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Fully materialize an npz archive, or raise :class:`IntegrityError`.

    Every member is decompressed here (not lazily), so truncation
    anywhere in the archive surfaces as one typed error at load time
    instead of a crash halfway through mutating the caller's state.
    A missing file stays ``FileNotFoundError`` — absent is not corrupt.
    """
    try:
        with np.load(os.fspath(path)) as archive:
            return {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
        raise IntegrityError(f"{os.fspath(path)}: unreadable archive: {exc}") from exc


def save_model(model: Module, path: PathLike) -> None:
    """Write a module's parameters and buffers to a compressed npz.

    Parameter names containing dots are npz-safe, so the state dict maps
    directly onto npz keys.  The write is atomic: readers observe the
    old archive or the complete new one, nothing in between.
    """
    atomic_savez(path, **model.state_dict())


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters saved with :func:`save_model` into ``model``.

    The model must already be constructed with matching architecture;
    shape mismatches raise ``ValueError``, unreadable archives
    :class:`IntegrityError`.
    """
    state = _read_npz(path)
    model.load_state_dict(state)
    return model


def save_optimizer(optimizer: Optimizer, path: PathLike) -> None:
    """Write optimizer state (hyperparameters, step count, slot buffers
    such as Adam moments) to a compressed npz, atomically.

    Together with :func:`save_model` this makes a training run fully
    resumable: load both and continuing matches the uninterrupted run.
    """
    atomic_savez(path, **optimizer.state_dict())


def load_optimizer(optimizer: Optimizer, path: PathLike) -> Optimizer:
    """Load state saved with :func:`save_optimizer` into ``optimizer``.

    The optimizer must already be constructed over the same parameter
    list (same order and shapes); slot shape mismatches raise
    ``ValueError``, unreadable archives :class:`IntegrityError`.
    """
    state = _read_npz(path)
    optimizer.load_state_dict(state)
    return optimizer
