"""Model and optimizer checkpointing to ``.npz`` files."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .layers.base import Module
from .optim import Optimizer

__all__ = ["save_model", "load_model", "save_optimizer", "load_optimizer"]

PathLike = Union[str, "os.PathLike[str]"]


def save_model(model: Module, path: PathLike) -> None:
    """Write a module's parameters and buffers to a compressed npz.

    Parameter names containing dots are npz-safe, so the state dict maps
    directly onto npz keys.
    """
    state = model.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(os.fspath(path), **state)


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters saved with :func:`save_model` into ``model``.

    The model must already be constructed with matching architecture;
    shape mismatches raise ``ValueError``.
    """
    with np.load(os.fspath(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model


def save_optimizer(optimizer: Optimizer, path: PathLike) -> None:
    """Write optimizer state (hyperparameters, step count, slot buffers
    such as Adam moments) to a compressed npz.

    Together with :func:`save_model` this makes a training run fully
    resumable: load both and continuing matches the uninterrupted run.
    """
    state = optimizer.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(os.fspath(path), **state)


def load_optimizer(optimizer: Optimizer, path: PathLike) -> Optimizer:
    """Load state saved with :func:`save_optimizer` into ``optimizer``.

    The optimizer must already be constructed over the same parameter
    list (same order and shapes); slot shape mismatches raise
    ``ValueError``.
    """
    with np.load(os.fspath(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    optimizer.load_state_dict(state)
    return optimizer
