"""Model checkpointing to ``.npz`` files."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .layers.base import Module

__all__ = ["save_model", "load_model"]

PathLike = Union[str, "os.PathLike[str]"]


def save_model(model: Module, path: PathLike) -> None:
    """Write a module's parameters and buffers to a compressed npz.

    Parameter names containing dots are npz-safe, so the state dict maps
    directly onto npz keys.
    """
    state = model.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(os.fspath(path), **state)


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters saved with :func:`save_model` into ``model``.

    The model must already be constructed with matching architecture;
    shape mismatches raise ``ValueError``.
    """
    with np.load(os.fspath(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model
