"""Wafer-map data substrate: representation, synthesis, datasets.

Because the WM-811K Kaggle dataset cannot be downloaded offline, this
package synthesizes a faithful surrogate: nine parametric defect
pattern generators over a circular die grid with the paper's 3-level
encoding and class-imbalance profile.  See DESIGN.md for the full
substitution rationale.
"""

from . import patterns, wafer
from .dataset import BatchIterator, WaferDataset, stratified_split
from .generator import (
    PAPER_TEST_COUNTS,
    PAPER_TRAIN_COUNTS,
    generate_dataset,
    generate_paper_profile,
    scaled_counts,
)
from .interchange import KAGGLE_NAME_MAP, load_interchange
from .io import load_dataset, save_dataset
from .patterns import CLASS_NAMES, PATTERN_CLASSES, make_generator
from .wafer import (
    FAIL,
    OFF,
    PASS,
    add_salt_pepper,
    disk_mask,
    failure_rate,
    grid_to_pixels,
    grid_to_tensor,
    pixels_to_grid,
    quantize_to_levels,
    render_ascii,
    resize_grid,
    rotate_grid,
    tensor_to_grid,
)

__all__ = [
    "patterns",
    "wafer",
    "WaferDataset",
    "BatchIterator",
    "stratified_split",
    "generate_dataset",
    "generate_paper_profile",
    "scaled_counts",
    "PAPER_TRAIN_COUNTS",
    "PAPER_TEST_COUNTS",
    "save_dataset",
    "load_dataset",
    "load_interchange",
    "KAGGLE_NAME_MAP",
    "CLASS_NAMES",
    "PATTERN_CLASSES",
    "make_generator",
    "OFF",
    "PASS",
    "FAIL",
    "disk_mask",
    "grid_to_pixels",
    "pixels_to_grid",
    "grid_to_tensor",
    "tensor_to_grid",
    "quantize_to_levels",
    "rotate_grid",
    "add_salt_pepper",
    "resize_grid",
    "failure_rate",
    "render_ascii",
]
