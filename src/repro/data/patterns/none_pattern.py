"""None pattern: no systematic defect, only background noise."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["NonePattern"]


@dataclass
class NonePattern(PatternGenerator):
    """A healthy wafer — random isolated failures only.

    This is the heavy majority class of WM-811K (29,357 of 43,484
    training maps in the paper's split).
    """

    name = "None"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        # The background added by PatternGenerator.sample IS the pattern.
        return np.zeros((self.size, self.size))
