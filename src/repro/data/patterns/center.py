"""Center defect pattern: a dense failure cluster at the wafer center."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["CenterPattern"]


@dataclass
class CenterPattern(PatternGenerator):
    """Failures concentrated in a disk around the wafer center.

    Draw-to-draw variation: cluster radius, failure density, and a
    small random offset of the cluster centroid (process-induced center
    defects are rarely perfectly centered).
    """

    name = "Center"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        radius = rng.uniform(0.18, 0.4)
        density = rng.uniform(0.6, 0.95)
        offset = rng.uniform(-0.06, 0.06, size=2)
        center = (self.size - 1) / 2.0
        yy, xx = np.mgrid[0:self.size, 0:self.size]
        dy = (yy - center) / (self.size / 2.0) - offset[0]
        dx = (xx - center) / (self.size / 2.0) - offset[1]
        r = np.sqrt(dy ** 2 + dx ** 2)
        inside = r <= radius
        return self._soft_region(inside, density, softness=0.4)
