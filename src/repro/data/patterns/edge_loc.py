"""Edge-Loc defect pattern: a localized arc of failures at the wafer edge."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["EdgeLocPattern"]


def angular_distance(theta: np.ndarray, center: float) -> np.ndarray:
    """Absolute angular distance handling the -pi/pi wrap-around."""
    diff = np.abs(theta - center)
    return np.minimum(diff, 2 * np.pi - diff)


@dataclass
class EdgeLocPattern(PatternGenerator):
    """Failures in an arc segment hugging the edge.

    Variation: arc position, arc half-width (30-60 degrees of halfwidth
    range keeps it clearly local, distinguishing it from Edge-Ring),
    radial depth, and density.
    """

    name = "Edge-Loc"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        angle = rng.uniform(-np.pi, np.pi)
        half_width = rng.uniform(np.deg2rad(15), np.deg2rad(55))
        depth = rng.uniform(0.12, 0.3)
        density = rng.uniform(0.65, 0.95)
        inside = (self.r >= 1.0 - depth) & (angular_distance(self.theta, angle) <= half_width)
        return self._soft_region(inside, density, softness=0.35)
