"""Edge-Ring defect pattern: a thin ring of failures at the wafer rim."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator
from .edge_loc import angular_distance

__all__ = ["EdgeRingPattern"]


@dataclass
class EdgeRingPattern(PatternGenerator):
    """Failures along (almost) the full circumference at the rim.

    Variation: ring thickness, density, and an optional angular gap
    (real edge rings are often interrupted where the notch sits).
    """

    name = "Edge-Ring"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        thickness = rng.uniform(0.06, 0.16)
        density = rng.uniform(0.75, 0.98)
        ring = self.r >= 1.0 - thickness
        if rng.random() < 0.35:
            gap_center = rng.uniform(-np.pi, np.pi)
            gap_half_width = rng.uniform(np.deg2rad(5), np.deg2rad(20))
            ring = ring & (angular_distance(self.theta, gap_center) > gap_half_width)
        return self._soft_region(ring, density)
