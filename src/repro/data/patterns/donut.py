"""Donut defect pattern: an annulus of failures around the center."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["DonutPattern"]


@dataclass
class DonutPattern(PatternGenerator):
    """Failures on a ring at mid-radius, leaving the center clean.

    Variation: inner radius, ring thickness, and failure density.
    """

    name = "Donut"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        inner = rng.uniform(0.25, 0.45)
        thickness = rng.uniform(0.18, 0.32)
        density = rng.uniform(0.6, 0.95)
        outer = min(inner + thickness, 0.85)
        inside = (self.r >= inner) & (self.r <= outer)
        return self._soft_region(inside, density, softness=0.35)
