"""Scratch defect pattern: a thin curved line of failures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["ScratchPattern"]


@dataclass
class ScratchPattern(PatternGenerator):
    """A handling scratch: a thin, gently curving polyline of failures.

    Generated as a constant-curvature walk across the wafer; variation
    covers start point, heading, curvature, length and (rarely) width.
    Scratches are sparse patterns, which is what makes the class hard —
    the paper's confusion matrix shows Scratch is the weakest class.
    """

    name = "Scratch"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        field = np.zeros((self.size, self.size))
        density = rng.uniform(0.8, 0.98)
        length = rng.uniform(0.6, 1.3) * self.size
        steps = max(int(length), 8)
        # Start somewhere in the central 70% so most of the scratch is on-wafer.
        start = rng.uniform(0.15, 0.85, size=2) * self.size
        heading = rng.uniform(0, 2 * np.pi)
        curvature = rng.uniform(-0.05, 0.05)
        wide = rng.random() < 0.25

        y, x = start
        for _ in range(steps):
            iy, ix = int(round(y)), int(round(x))
            if 0 <= iy < self.size and 0 <= ix < self.size:
                field[iy, ix] = density
                if wide:
                    for dy, dx in ((0, 1), (1, 0)):
                        ny, nx = iy + dy, ix + dx
                        if 0 <= ny < self.size and 0 <= nx < self.size:
                            field[ny, nx] = density
            heading += curvature
            y += np.sin(heading)
            x += np.cos(heading)
        return field
