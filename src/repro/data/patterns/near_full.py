"""Near-Full defect pattern: nearly the whole wafer fails."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["NearFullPattern"]


@dataclass
class NearFullPattern(PatternGenerator):
    """Catastrophic wafers with 80-97% failure everywhere.

    Variation: global failure density and a weak radial gradient (some
    near-full wafers retain a small surviving region).
    """

    name = "Near-Full"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        density = rng.uniform(0.8, 0.97)
        gradient = rng.uniform(-0.1, 0.1)
        return np.clip(density + gradient * self.r, 0.0, 0.99)
