"""Shared machinery for synthetic defect-pattern generators.

Each WM-811K defect class is modeled as a spatial *failure-probability
field* over the wafer disk; sampling a wafer draws Bernoulli failures
from that field and superimposes a low-rate background of random
failures (real wafers always contain some).  Generators are
parameterized so that every draw varies in position, size, density and
orientation — giving the classifier the same intra-class variation the
industrial dataset exhibits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Tuple

import numpy as np

from ..wafer import FAIL, OFF, PASS, disk_mask

__all__ = ["PatternGenerator", "polar_coordinates", "bernoulli_wafer"]


def polar_coordinates(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(r, theta)`` grids for a ``size x size`` wafer.

    ``r`` is normalized so the wafer edge sits at 1.0; ``theta`` is in
    radians in ``[-pi, pi]``.
    """
    center = (size - 1) / 2.0
    yy, xx = np.mgrid[0:size, 0:size]
    dy = yy - center
    dx = xx - center
    r = np.sqrt(dy ** 2 + dx ** 2) / (size / 2.0)
    theta = np.arctan2(dy, dx)
    return r, theta


def bernoulli_wafer(
    fail_probability: np.ndarray,
    mask: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a die grid from a per-location failure-probability field."""
    draws = rng.random(fail_probability.shape)
    grid = np.where(draws < fail_probability, FAIL, PASS).astype(np.uint8)
    grid[~mask] = OFF
    return grid


@dataclass
class PatternGenerator(ABC):
    """Base class for per-class wafer generators.

    Parameters
    ----------
    size:
        Die-grid side length.
    background_rate:
        ``(low, high)`` range for the per-wafer uniform draw of the
        random background failure probability.
    deformation:
        Strength of smooth multiplicative field deformation simulating
        process nonuniformity.  Real WM-811K patterns are irregular —
        an edge ring has weak and strong sectors, center blobs are
        lopsided.  0 disables; 0.5 (default) modulates the failure
        field by a smooth random factor in roughly [1-d, 1+d].
    """

    size: int = 64
    background_rate: Tuple[float, float] = (0.005, 0.04)
    deformation: float = 0.5

    def __post_init__(self) -> None:
        if self.size < 8:
            raise ValueError("pattern generators require size >= 8")
        if not 0.0 <= self.deformation < 1.0:
            raise ValueError("deformation must be in [0, 1)")
        self.mask = disk_mask(self.size)
        self.r, self.theta = polar_coordinates(self.size)

    #: Canonical WM-811K class name; subclasses override.  ClassVar so
    #: dataclass machinery does not turn it into an instance field.
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        """Return this draw's failure-probability field (values in [0,1])."""

    def _deformation_field(self, rng: np.random.Generator) -> np.ndarray:
        """Smooth multiplicative modulation field around 1.0.

        A coarse random grid is smoothly upsampled to wafer size,
        yielding spatially-correlated "process weather".
        """
        from scipy import ndimage

        coarse = rng.uniform(1.0 - self.deformation, 1.0 + self.deformation, size=(4, 4))
        zoom = self.size / 4.0
        smooth = ndimage.zoom(coarse, zoom, order=3)[: self.size, : self.size]
        return np.clip(smooth, 0.0, 2.0)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one wafer: pattern field x deformation + background noise."""
        field = self.failure_field(rng)
        if self.deformation > 0.0:
            field = field * self._deformation_field(rng)
        background = rng.uniform(*self.background_rate)
        field = np.clip(field + background, 0.0, 1.0)
        return bernoulli_wafer(field, self.mask, rng)

    def sample_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` wafers, shape ``(count, size, size)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.stack([self.sample(rng) for _ in range(count)]) if count else np.empty(
            (0, self.size, self.size), dtype=np.uint8
        )

    def _soft_region(self, inside: np.ndarray, density: float, softness: float = 0.0) -> np.ndarray:
        """Probability field that is ``density`` inside a region, 0 outside.

        ``softness`` blurs the boundary by mixing in a smaller
        probability in a dilated border; kept simple (hard boundary)
        when 0.
        """
        field = np.where(inside, density, 0.0)
        if softness > 0.0:
            from scipy import ndimage

            blurred = ndimage.uniform_filter(inside.astype(np.float64), size=3)
            border = (blurred > 0) & (~inside)
            field = np.where(border, density * softness, field)
        return field
