"""Location (Loc) defect pattern: a failure cluster away from the center."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["LocationPattern"]


@dataclass
class LocationPattern(PatternGenerator):
    """A localized blob of failures at a random interior position.

    Distinguished from Center by its centroid sitting at mid-radius and
    from Edge-Loc by staying clear of the rim.  Variation: centroid
    position, blob radius, anisotropy (blobs are slightly elliptical),
    and density.
    """

    name = "Location"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        centroid_r = rng.uniform(0.25, 0.6)
        centroid_theta = rng.uniform(-np.pi, np.pi)
        radius = rng.uniform(0.12, 0.25)
        density = rng.uniform(0.6, 0.95)
        aspect = rng.uniform(0.6, 1.0)
        tilt = rng.uniform(0, np.pi)

        center = (self.size - 1) / 2.0
        cy = center + centroid_r * np.sin(centroid_theta) * (self.size / 2.0)
        cx = center + centroid_r * np.cos(centroid_theta) * (self.size / 2.0)
        yy, xx = np.mgrid[0:self.size, 0:self.size]
        dy = (yy - cy) / (self.size / 2.0)
        dx = (xx - cx) / (self.size / 2.0)
        # Rotate into the ellipse frame, squeeze one axis.
        u = dx * np.cos(tilt) + dy * np.sin(tilt)
        v = -dx * np.sin(tilt) + dy * np.cos(tilt)
        r = np.sqrt(u ** 2 + (v / aspect) ** 2)
        inside = r <= radius
        return self._soft_region(inside, density, softness=0.4)
