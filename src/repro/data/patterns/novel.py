"""Novel defect patterns outside the nine WM-811K classes.

The paper's Table IV emulates a *new* defect type by holding out one of
the known classes.  These generators go further: they synthesize defect
morphologies that exist in fab practice but not in the WM-811K label
set, so new-defect-detection can be evaluated against patterns the
model has genuinely never seen any relative of:

* :class:`GridPattern` — a reticle/stepper signature: failures on a
  regular grid of exposure fields.
* :class:`HalfMoonPattern` — one half of the wafer fails (slit/coating
  asymmetry).
* :class:`CheckerboardPattern` — alternating exposure-field failure, a
  classic dose-alternation signature.

They are registered separately from the canonical classes so the
standard dataset generator never mixes them in by accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Type

import numpy as np

from .base import PatternGenerator

__all__ = [
    "GridPattern",
    "HalfMoonPattern",
    "CheckerboardPattern",
    "NOVEL_PATTERN_CLASSES",
    "make_novel_generator",
]


@dataclass
class GridPattern(PatternGenerator):
    """Failures along a regular grid of horizontal/vertical lines.

    Variation: grid pitch, line thickness, phase offset, density.
    """

    name = "Grid"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        pitch = int(rng.integers(4, max(6, self.size // 4)))
        offset = int(rng.integers(0, pitch))
        density = rng.uniform(0.6, 0.9)
        field = np.zeros((self.size, self.size))
        field[offset::pitch, :] = density
        field[:, offset::pitch] = density
        return field


@dataclass
class HalfMoonPattern(PatternGenerator):
    """One half-plane of the wafer fails (random orientation).

    Variation: cut angle, cut offset from center, density.
    """

    name = "Half-Moon"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        angle = rng.uniform(0, 2 * np.pi)
        offset = rng.uniform(-0.2, 0.2)
        density = rng.uniform(0.6, 0.95)
        center = (self.size - 1) / 2.0
        yy, xx = np.mgrid[0:self.size, 0:self.size]
        dy = (yy - center) / (self.size / 2.0)
        dx = (xx - center) / (self.size / 2.0)
        signed_distance = dx * np.cos(angle) + dy * np.sin(angle) - offset
        return np.where(signed_distance > 0, density, 0.0)


@dataclass
class CheckerboardPattern(PatternGenerator):
    """Alternating square exposure fields fail.

    Variation: field size, parity, density.
    """

    name = "Checkerboard"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        field_size = int(rng.integers(3, max(4, self.size // 5)))
        parity = int(rng.integers(0, 2))
        density = rng.uniform(0.6, 0.9)
        yy, xx = np.mgrid[0:self.size, 0:self.size]
        cells = (yy // field_size + xx // field_size) % 2
        return np.where(cells == parity, density, 0.0)


#: Novel (non-WM-811K) pattern registry.
NOVEL_PATTERN_CLASSES: Dict[str, Type[PatternGenerator]] = {
    "Grid": GridPattern,
    "Half-Moon": HalfMoonPattern,
    "Checkerboard": CheckerboardPattern,
}


def make_novel_generator(name: str, size: int = 64) -> PatternGenerator:
    """Instantiate a novel-pattern generator by name."""
    try:
        cls = NOVEL_PATTERN_CLASSES[name]
    except KeyError:
        known = ", ".join(NOVEL_PATTERN_CLASSES)
        raise ValueError(f"unknown novel pattern {name!r}; expected one of: {known}") from None
    return cls(size=size)
