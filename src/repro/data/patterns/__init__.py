"""Synthetic generators for the nine WM-811K defect pattern classes.

The registry :data:`PATTERN_CLASSES` maps canonical class names (in the
paper's Table II order) to generator types; :func:`make_generator`
instantiates one by name.
"""

from __future__ import annotations

from typing import Dict, Type

from .base import PatternGenerator, bernoulli_wafer, polar_coordinates
from .center import CenterPattern
from .donut import DonutPattern
from .edge_loc import EdgeLocPattern
from .edge_ring import EdgeRingPattern
from .location import LocationPattern
from .mixed import MixedPattern
from .near_full import NearFullPattern
from .none_pattern import NonePattern
from .novel import (
    CheckerboardPattern,
    GridPattern,
    HalfMoonPattern,
    NOVEL_PATTERN_CLASSES,
    make_novel_generator,
)
from .random_pattern import RandomPattern
from .scratch import ScratchPattern

__all__ = [
    "PatternGenerator",
    "polar_coordinates",
    "bernoulli_wafer",
    "CenterPattern",
    "DonutPattern",
    "EdgeLocPattern",
    "EdgeRingPattern",
    "LocationPattern",
    "NearFullPattern",
    "RandomPattern",
    "ScratchPattern",
    "NonePattern",
    "MixedPattern",
    "PATTERN_CLASSES",
    "CLASS_NAMES",
    "make_generator",
    "GridPattern",
    "HalfMoonPattern",
    "CheckerboardPattern",
    "NOVEL_PATTERN_CLASSES",
    "make_novel_generator",
]

#: Class name -> generator type, in the paper's Table II row order.
PATTERN_CLASSES: Dict[str, Type[PatternGenerator]] = {
    "Center": CenterPattern,
    "Donut": DonutPattern,
    "Edge-Loc": EdgeLocPattern,
    "Edge-Ring": EdgeRingPattern,
    "Location": LocationPattern,
    "Near-Full": NearFullPattern,
    "Random": RandomPattern,
    "Scratch": ScratchPattern,
    "None": NonePattern,
}

#: Canonical class order used throughout the reproduction.
CLASS_NAMES = tuple(PATTERN_CLASSES)


def make_generator(name: str, size: int = 64) -> PatternGenerator:
    """Instantiate the generator for a class name from the registry."""
    try:
        cls = PATTERN_CLASSES[name]
    except KeyError:
        known = ", ".join(CLASS_NAMES)
        raise ValueError(f"unknown pattern class {name!r}; expected one of: {known}") from None
    return cls(size=size)
