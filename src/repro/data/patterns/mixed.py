"""Mixed defect pattern: two defect types on the same wafer.

The paper motivates the reject option in part by wafers that "exhibit
more than one defect pattern which can overwhelm the classification
model".  WM-811K labels such maps with a single class; this generator
produces them explicitly so the selective model's behaviour on
multi-pattern wafers can be studied (they are *not* part of the
standard 9-class dataset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from .base import PatternGenerator

__all__ = ["MixedPattern"]


@dataclass
class MixedPattern(PatternGenerator):
    """Superposition of two component patterns' failure fields.

    Parameters
    ----------
    components:
        The two (or more) pattern generators to combine.  They must
        share this generator's ``size``.
    """

    components: Sequence[PatternGenerator] = field(default_factory=tuple)

    name = "Mixed"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.components) < 2:
            raise ValueError("MixedPattern needs at least two component patterns")
        for component in self.components:
            if component.size != self.size:
                raise ValueError("all component patterns must share the same size")

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        combined = np.zeros((self.size, self.size))
        for component in self.components:
            combined = np.maximum(combined, component.failure_field(rng))
        return combined

    def component_names(self) -> Tuple[str, ...]:
        """Names of the superimposed defect classes."""
        return tuple(component.name for component in self.components)
