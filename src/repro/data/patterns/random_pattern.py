"""Random defect pattern: spatially uniform elevated failure rate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PatternGenerator

__all__ = ["RandomPattern"]


@dataclass
class RandomPattern(PatternGenerator):
    """Uniform random failures at a rate well above background.

    The rate range (18-45%) separates Random from None (few percent)
    and Near-Full (>80%), matching how the classes read visually in
    WM-811K.
    """

    name = "Random"

    def failure_field(self, rng: np.random.Generator) -> np.ndarray:
        rate = rng.uniform(0.18, 0.45)
        return np.full((self.size, self.size), rate)
