"""Synthetic WM-811K dataset synthesis.

The real WM-811K Kaggle dump is not available in this offline
environment; this module builds a statistically faithful surrogate:
the same nine classes, the same 3-level encoding, and the paper's
class-frequency profile (Table II, "Training"/"Testing" columns),
scaled down by a configurable factor so experiments run on a laptop.
DESIGN.md documents the substitution in detail.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .dataset import WaferDataset
from .patterns import CLASS_NAMES, make_generator
from .wafer import resize_grid

__all__ = [
    "PAPER_TRAIN_COUNTS",
    "PAPER_TEST_COUNTS",
    "scaled_counts",
    "generate_dataset",
    "generate_paper_profile",
]

#: Table II "Training" column: per-class map counts of the paper's split.
PAPER_TRAIN_COUNTS: Dict[str, int] = {
    "Center": 2767,
    "Donut": 329,
    "Edge-Loc": 1958,
    "Edge-Ring": 6802,
    "Location": 1311,
    "Near-Full": 49,
    "Random": 498,
    "Scratch": 413,
    "None": 29357,
}

#: Table II "Testing" column.
PAPER_TEST_COUNTS: Dict[str, int] = {
    "Center": 695,
    "Donut": 80,
    "Edge-Loc": 459,
    "Edge-Ring": 1752,
    "Location": 309,
    "Near-Full": 5,
    "Random": 111,
    "Scratch": 87,
    "None": 7373,
}


def scaled_counts(
    counts: Mapping[str, int],
    scale: float,
    minimum: int = 1,
) -> Dict[str, int]:
    """Scale a class-count profile down, keeping every class non-empty.

    >>> scaled_counts({"A": 100, "B": 10}, 0.1)
    {'A': 10, 'B': 1}
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return {name: max(minimum, int(round(count * scale))) for name, count in counts.items()}


def generate_dataset(
    counts: Mapping[str, int],
    size: int = 64,
    seed: int = 0,
    class_names: Optional[Sequence[str]] = None,
    native_size_range: Optional[tuple] = (12, 40),
) -> WaferDataset:
    """Generate a labeled synthetic dataset with the given class counts.

    Parameters
    ----------
    counts:
        Mapping from class name to number of wafers to synthesize.
        Classes with count 0 are allowed (they stay in the label
        vocabulary with no samples).
    size:
        Die-grid side length of the returned maps.
    seed:
        Seed for the dataset's random generator; the same seed, counts
        and size reproduce the dataset bit-for-bit.
    class_names:
        Label vocabulary (defaults to the canonical nine classes).
        Every key of ``counts`` must be in it.
    native_size_range:
        ``(low, high)`` range of native die-grid sizes.  Real WM-811K
        maps come in many resolutions (roughly 10x10 to 300x300) and
        are rescaled to a common size, which leaves blocky aliasing
        artifacts; each synthetic wafer is drawn at a random native
        size in this range and nearest-neighbour-rescaled to ``size``
        to reproduce that effect.  ``None`` disables the simulation
        (wafers are generated directly at ``size``).
    """
    names = tuple(class_names) if class_names is not None else CLASS_NAMES
    unknown = set(counts) - set(names)
    if unknown:
        raise ValueError(f"counts contain classes outside the vocabulary: {sorted(unknown)}")
    if native_size_range is not None:
        low, high = native_size_range
        if low < 8 or high < low:
            raise ValueError("native_size_range must satisfy 8 <= low <= high")
    rng = np.random.default_rng(seed)

    generator_cache: Dict[tuple, object] = {}

    def sample_one(name: str) -> np.ndarray:
        if native_size_range is None:
            native = size
        else:
            native = int(rng.integers(native_size_range[0], native_size_range[1] + 1))
        key = (name, native)
        if key not in generator_cache:
            generator_cache[key] = make_generator(name, size=native)
        grid = generator_cache[key].sample(rng)
        if native != size:
            grid = resize_grid(grid, size)
        return grid

    all_grids = []
    all_labels = []
    for label, name in enumerate(names):
        count = int(counts.get(name, 0))
        if count == 0:
            continue
        all_grids.append(np.stack([sample_one(name) for _ in range(count)]))
        all_labels.append(np.full(count, label, dtype=np.int64))
    if not all_grids:
        grids = np.empty((0, size, size), dtype=np.uint8)
        labels = np.empty((0,), dtype=np.int64)
    else:
        grids = np.concatenate(all_grids)
        labels = np.concatenate(all_labels)

    permutation = rng.permutation(len(grids))
    return WaferDataset(grids[permutation], labels[permutation], names)


def generate_paper_profile(
    scale: float = 0.05,
    size: int = 64,
    seed: int = 0,
) -> Dict[str, WaferDataset]:
    """Generate train/test datasets matching the paper's Table II profile.

    Returns ``{"train": ..., "test": ...}`` with per-class counts equal
    to the paper's multiplied by ``scale``.  At ``scale=1`` this is the
    full 43,484 / 10,871 map profile.
    """
    train_counts = scaled_counts(PAPER_TRAIN_COUNTS, scale)
    test_counts = scaled_counts(PAPER_TEST_COUNTS, scale)
    return {
        "train": generate_dataset(train_counts, size=size, seed=seed),
        "test": generate_dataset(test_counts, size=size, seed=seed + 1),
    }
