"""Dataset persistence to ``.npz`` archives."""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from .dataset import WaferDataset

__all__ = ["save_dataset", "load_dataset"]

PathLike = Union[str, "os.PathLike[str]"]


def save_dataset(dataset: WaferDataset, path: PathLike) -> None:
    """Write a dataset (grids, labels, class names, weights) to npz."""
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    payload = {
        "grids": dataset.grids,
        "labels": dataset.labels,
        "class_names": np.array(json.dumps(list(dataset.class_names))),
    }
    if dataset.sample_weights is not None:
        payload["sample_weights"] = dataset.sample_weights
    np.savez_compressed(os.fspath(path), **payload)


def load_dataset(path: PathLike) -> WaferDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(os.fspath(path)) as archive:
        class_names = tuple(json.loads(str(archive["class_names"])))
        weights = archive["sample_weights"] if "sample_weights" in archive.files else None
        return WaferDataset(archive["grids"], archive["labels"], class_names, weights)
