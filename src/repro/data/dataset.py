"""Dataset container, splits, and mini-batch iteration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from .wafer import grid_to_tensor

__all__ = ["WaferDataset", "BatchIterator", "stratified_split"]


@dataclass
class WaferDataset:
    """A labeled collection of wafer die grids.

    Attributes
    ----------
    grids:
        ``(N, H, W)`` uint8 array of die grids with values {0,1,2}.
    labels:
        ``(N,)`` integer class indices into ``class_names``.
    class_names:
        Canonical names for the label indices.
    sample_weights:
        Optional ``(N,)`` float weights; the augmentation pipeline sets
        these to ``w < 1`` for synthetic samples (paper Sec. III-B).
    """

    grids: np.ndarray
    labels: np.ndarray
    class_names: Tuple[str, ...]
    sample_weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.grids = np.asarray(self.grids, dtype=np.uint8)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.class_names = tuple(self.class_names)
        if self.grids.ndim != 3:
            raise ValueError(f"grids must be (N, H, W), got shape {self.grids.shape}")
        if self.labels.shape != (len(self.grids),):
            raise ValueError("labels must be 1-D and match the number of grids")
        if self.labels.size and (self.labels.min() < 0 or self.labels.max() >= len(self.class_names)):
            raise ValueError("labels out of range for class_names")
        if self.sample_weights is not None:
            self.sample_weights = np.asarray(self.sample_weights, dtype=np.float32)
            if self.sample_weights.shape != (len(self.grids),):
                raise ValueError("sample_weights must match the number of grids")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.grids)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def map_size(self) -> int:
        return self.grids.shape[1]

    def weights(self) -> np.ndarray:
        """Per-sample weights, defaulting to all ones."""
        if self.sample_weights is None:
            return np.ones(len(self), dtype=np.float32)
        return self.sample_weights

    def class_counts(self) -> Dict[str, int]:
        """Number of samples per class, keyed by class name."""
        counts = np.bincount(self.labels, minlength=self.num_classes)
        return {name: int(count) for name, count in zip(self.class_names, counts)}

    def tensors(self) -> np.ndarray:
        """All grids as normalized CNN inputs, shape ``(N, 1, H, W)``."""
        return np.stack([grid_to_tensor(grid) for grid in self.grids])

    def subset(self, indices: Sequence[int]) -> "WaferDataset":
        """Dataset restricted to ``indices`` (weights carried along)."""
        indices = np.asarray(indices, dtype=np.intp)
        weights = self.sample_weights[indices] if self.sample_weights is not None else None
        return WaferDataset(self.grids[indices], self.labels[indices], self.class_names, weights)

    def filter_classes(self, keep: Sequence[str], relabel: bool = False) -> "WaferDataset":
        """Keep only the named classes.

        With ``relabel=True`` the kept classes are re-indexed densely in
        their ``keep`` order and ``class_names`` shrinks accordingly —
        used by the leave-one-class-out experiment (Table IV).
        """
        keep = tuple(keep)
        unknown = set(keep) - set(self.class_names)
        if unknown:
            raise ValueError(f"unknown classes: {sorted(unknown)}")
        keep_indices = [self.class_names.index(name) for name in keep]
        selector = np.isin(self.labels, keep_indices)
        grids = self.grids[selector]
        labels = self.labels[selector]
        weights = self.sample_weights[selector] if self.sample_weights is not None else None
        if relabel:
            remap = {old: new for new, old in enumerate(keep_indices)}
            labels = np.array([remap[int(label)] for label in labels], dtype=np.int64)
            return WaferDataset(grids, labels, keep, weights)
        return WaferDataset(grids, labels, self.class_names, weights)

    def merge(self, other: "WaferDataset") -> "WaferDataset":
        """Concatenate two datasets with identical class vocabularies."""
        if self.class_names != other.class_names:
            raise ValueError("cannot merge datasets with different class names")
        if len(self) and len(other) and self.map_size != other.map_size:
            raise ValueError("cannot merge datasets with different map sizes")
        weights = None
        if self.sample_weights is not None or other.sample_weights is not None:
            weights = np.concatenate([self.weights(), other.weights()])
        return WaferDataset(
            np.concatenate([self.grids, other.grids]),
            np.concatenate([self.labels, other.labels]),
            self.class_names,
            weights,
        )

    def shuffled(self, rng: np.random.Generator) -> "WaferDataset":
        """Return a copy with samples in random order."""
        permutation = rng.permutation(len(self))
        return self.subset(permutation)


def stratified_split(
    dataset: WaferDataset,
    fractions: Sequence[float],
    rng: np.random.Generator,
) -> Tuple[WaferDataset, ...]:
    """Split a dataset per-class into parts with the given fractions.

    The paper uses a stratified 0.8:0.2 train-test split of the WM-811K
    "Train" set (Sec. IV-A) and a 0.7:0.1:0.2 split in its
    data-discrepancy study.  Fractions must sum to 1 (within 1e-6).

    Returns one :class:`WaferDataset` per fraction; every class is
    partitioned independently so minority classes appear in all splits
    whenever they have enough samples.
    """
    fractions = list(fractions)
    if any(f <= 0 for f in fractions):
        raise ValueError("all fractions must be positive")
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")

    part_indices: list = [[] for _ in fractions]
    for class_index in range(dataset.num_classes):
        members = np.flatnonzero(dataset.labels == class_index)
        members = rng.permutation(members)
        boundaries = np.floor(np.cumsum(fractions) * len(members)).astype(int)
        start = 0
        for part, stop in enumerate(boundaries):
            part_indices[part].extend(members[start:stop])
            start = stop
    return tuple(
        dataset.subset(rng.permutation(np.asarray(indices, dtype=np.intp)))
        for indices in part_indices
    )


class BatchIterator:
    """Shuffling mini-batch iterator over a :class:`WaferDataset`.

    Yields ``(inputs, labels, weights)`` with inputs already converted
    to normalized ``(B, 1, H, W)`` float tensors.

    Two hot-loop shortcuts:

    * unweighted datasets skip the per-batch weight gather and slice
      one shared all-ones vector instead;
    * ``prefetch=True`` stages the next batch's fancy-index gather on a
      background thread while the caller computes on the current batch
      (the gather releases the GIL inside numpy, so it genuinely
      overlaps the training step).  Batch order and contents are
      identical either way.
    """

    def __init__(
        self,
        dataset: WaferDataset,
        batch_size: int,
        rng: Optional[np.random.Generator] = None,
        shuffle: bool = True,
        drop_last: bool = False,
        prefetch: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.prefetch = prefetch
        # Tensor conversion is cheap but not free; cache once.
        self._tensors = dataset.tensors()
        # All-ones fast path: without explicit sample weights, one
        # shared vector serves every batch as a contiguous slice.
        self._uniform = dataset.sample_weights is None
        self._weights = dataset.weights()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _gather(
        self, batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        weights = (
            self._weights[: len(batch)] if self._uniform else self._weights[batch]
        )
        return (self._tensors[batch], self.dataset.labels[batch], weights)

    def _batches(self, order: np.ndarray) -> Iterator[np.ndarray]:
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            yield batch

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            order = self.rng.permutation(order)
        if not self.prefetch:
            for batch in self._batches(order):
                yield self._gather(batch)
            return
        # Double-buffer: gather batch k+1 on a worker thread while the
        # consumer computes on batch k.
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as executor:
            pending = None
            for batch in self._batches(order):
                staged = executor.submit(self._gather, batch)
                if pending is not None:
                    yield pending.result()
                pending = staged
            if pending is not None:
                yield pending.result()
