"""Loading real WM-811K data from a simple interchange format.

The Kaggle WM-811K dump (``LSWMD.pkl``) is a pandas pickle that cannot
be shipped or parsed here (no pandas offline, and the data is not
redistributable).  For users who *do* have the dataset, this module
defines a tiny interchange layout that a five-line pandas script can
produce, and loads it into a :class:`WaferDataset`:

``<root>/``
    ``maps.npy``    — object array or uint8 array of die grids.  Values
    follow the Kaggle convention {0: off-wafer, 1: pass, 2: fail},
    which is exactly this package's internal encoding.
    ``labels.txt``  — one class name per line (the Kaggle
    ``failureType`` strings; see :data:`KAGGLE_NAME_MAP`).

Conversion snippet (run wherever pandas + the pickle are available)::

    import numpy as np, pandas as pd
    df = pd.read_pickle("LSWMD.pkl")
    df = df[df.failureType.map(lambda t: len(t) > 0)]
    np.save("maps.npy", np.array([m for m in df.waferMap], dtype=object),
            allow_pickle=True)
    with open("labels.txt", "w") as f:
        f.writelines(str(t[0][0]) + "\\n" for t in df.failureType)
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

import numpy as np

from .dataset import WaferDataset
from .patterns import CLASS_NAMES
from .wafer import resize_grid

__all__ = ["KAGGLE_NAME_MAP", "load_interchange"]

PathLike = Union[str, "os.PathLike[str]"]

#: Kaggle ``failureType`` strings -> this package's canonical names.
KAGGLE_NAME_MAP: Dict[str, str] = {
    "Center": "Center",
    "Donut": "Donut",
    "Edge-Loc": "Edge-Loc",
    "Edge-Ring": "Edge-Ring",
    "Loc": "Location",
    "Near-full": "Near-Full",
    "Random": "Random",
    "Scratch": "Scratch",
    "none": "None",
}


def load_interchange(
    root: PathLike,
    size: int = 64,
    limit: Optional[int] = None,
) -> WaferDataset:
    """Load ``maps.npy`` + ``labels.txt`` into a :class:`WaferDataset`.

    Maps are nearest-neighbour-rescaled to ``size`` (the paper rescales
    all maps to a common resolution).  Unknown label strings raise with
    the offending value so conversion bugs surface immediately.

    Parameters
    ----------
    root:
        Directory containing the two interchange files.
    size:
        Target die-grid side length.
    limit:
        Optionally cap the number of maps loaded (useful for fast
        experimentation on the 800k-map full dump).
    """
    root = os.fspath(root)
    maps_path = os.path.join(root, "maps.npy")
    labels_path = os.path.join(root, "labels.txt")
    if not os.path.exists(maps_path) or not os.path.exists(labels_path):
        raise FileNotFoundError(
            f"interchange files not found under {root!r} "
            "(expected maps.npy and labels.txt)"
        )

    raw_maps = np.load(maps_path, allow_pickle=True)
    with open(labels_path) as handle:
        raw_labels = [line.strip() for line in handle if line.strip()]
    if len(raw_maps) != len(raw_labels):
        raise ValueError(
            f"maps.npy has {len(raw_maps)} maps but labels.txt has "
            f"{len(raw_labels)} labels"
        )
    if limit is not None:
        raw_maps = raw_maps[:limit]
        raw_labels = raw_labels[:limit]

    name_to_index = {name: i for i, name in enumerate(CLASS_NAMES)}
    grids = []
    labels = []
    for raw_map, raw_label in zip(raw_maps, raw_labels):
        canonical = KAGGLE_NAME_MAP.get(raw_label, raw_label)
        if canonical not in name_to_index:
            known = sorted(set(KAGGLE_NAME_MAP) | set(CLASS_NAMES))
            raise ValueError(f"unknown label {raw_label!r}; expected one of {known}")
        grid = np.asarray(raw_map, dtype=np.uint8)
        if grid.ndim != 2:
            raise ValueError(f"map has invalid shape {grid.shape}")
        if grid.max(initial=0) > 2:
            raise ValueError("map values must be in {0, 1, 2}")
        if grid.shape != (size, size):
            grid = resize_grid(grid, size)
        grids.append(grid)
        labels.append(name_to_index[canonical])

    if not grids:
        return WaferDataset(
            np.empty((0, size, size), dtype=np.uint8),
            np.empty((0,), dtype=np.int64),
            CLASS_NAMES,
        )
    return WaferDataset(np.stack(grids), np.asarray(labels, dtype=np.int64), CLASS_NAMES)
