"""Wafer-map representation and raster operations.

WM-811K wafer maps are die grids with three states; the paper renders
them as single-channel images with pixel levels:

* ``0``   — location not on the wafer (outside the circular disk),
* ``127`` — die that passed test,
* ``255`` — die that failed test.

Internally this package stores maps as small integer *die grids* with
values :data:`OFF` (0), :data:`PASS` (1) and :data:`FAIL` (2); the
helpers here convert between die grids, the paper's 3-level pixel
images, and the normalized float tensors fed to the CNN.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "OFF",
    "PASS",
    "FAIL",
    "PIXEL_LEVELS",
    "disk_mask",
    "grid_to_pixels",
    "pixels_to_grid",
    "grid_to_tensor",
    "tensor_to_grid",
    "quantize_to_levels",
    "rotate_grid",
    "add_salt_pepper",
    "resize_grid",
    "failure_rate",
    "render_ascii",
]

OFF = 0
PASS = 1
FAIL = 2

#: Pixel levels used by the paper's image representation, indexed by die state.
PIXEL_LEVELS = np.array([0, 127, 255], dtype=np.uint8)

#: Normalized tensor values, indexed by die state (0, 0.5, 1.0).
_TENSOR_LEVELS = np.array([0.0, 0.5, 1.0], dtype=np.float32)


def disk_mask(size: int, margin: float = 0.02) -> np.ndarray:
    """Boolean mask of die locations on a circular wafer.

    Parameters
    ----------
    size:
        Side length of the square grid.
    margin:
        Fraction of the radius left empty at the border, so the disk
        does not touch the image boundary (as in WM-811K renders).
    """
    if size < 4:
        raise ValueError("wafer size must be at least 4")
    radius = size / 2.0 * (1.0 - margin)
    center = (size - 1) / 2.0
    yy, xx = np.mgrid[0:size, 0:size]
    return (yy - center) ** 2 + (xx - center) ** 2 <= radius ** 2


def grid_to_pixels(grid: np.ndarray) -> np.ndarray:
    """Convert a die grid {0,1,2} to the paper's {0,127,255} image."""
    _check_grid(grid)
    return PIXEL_LEVELS[grid]


def pixels_to_grid(pixels: np.ndarray) -> np.ndarray:
    """Convert a {0,127,255} pixel image back to a die grid {0,1,2}.

    Pixels are snapped to the nearest of the three levels, so images
    that went through lossy processing still decode.
    """
    levels = PIXEL_LEVELS.astype(np.float32)
    distances = np.abs(pixels.astype(np.float32)[..., None] - levels[None, None, :])
    return distances.argmin(axis=-1).astype(np.uint8)


def grid_to_tensor(grid: np.ndarray) -> np.ndarray:
    """Convert a die grid to a normalized float32 CNN input in [0, 1].

    Output shape is ``(1, H, W)`` (channel-first, single channel).
    """
    _check_grid(grid)
    return _TENSOR_LEVELS[grid][None, :, :]


def tensor_to_grid(tensor: np.ndarray) -> np.ndarray:
    """Inverse of :func:`grid_to_tensor` with nearest-level snapping.

    Accepts ``(H, W)`` or ``(1, H, W)`` float arrays with arbitrary
    (e.g. auto-encoder output) values.
    """
    if tensor.ndim == 3:
        tensor = tensor[0]
    distances = np.abs(tensor.astype(np.float32)[..., None] - _TENSOR_LEVELS[None, None, :])
    return distances.argmin(axis=-1).astype(np.uint8)


def quantize_to_levels(
    image: np.ndarray,
    mask: Optional[np.ndarray] = None,
    fail_count: Optional[int] = None,
) -> np.ndarray:
    """Quantize a continuous image to a valid 3-level die grid.

    This is line 7 of Algorithm 1: auto-encoder reconstructions have a
    continuous spectrum of values and must be mapped back to the three
    wafer levels.  If a wafer ``mask`` is given, off-wafer locations are
    forced to :data:`OFF` and on-wafer locations to PASS/FAIL (never
    OFF), which keeps the wafer silhouette intact.

    With ``fail_count`` set (requires ``mask``), quantization is
    *count-matched*: the ``fail_count`` on-wafer dies with the highest
    reconstructed intensity become FAIL.  This keeps the synthetic
    wafer's failure density equal to its source wafer's even when the
    auto-encoder's output is low-contrast (a lightly-trained decoder
    otherwise quantizes to an almost-empty wafer under a fixed
    threshold), which is essential for augmentation fidelity.
    """
    grid = tensor_to_grid(image)
    if mask is None:
        if fail_count is not None:
            raise ValueError("fail_count requires a wafer mask")
        return grid
    if image.ndim == 3:
        image = image[0]
    image = image.astype(np.float32)
    if fail_count is None:
        on_wafer = np.where(image >= 0.75, FAIL, PASS).astype(np.uint8)
    else:
        on_wafer = np.full(image.shape, PASS, dtype=np.uint8)
        wafer_values = np.where(mask, image, -np.inf)
        count = int(np.clip(fail_count, 0, int(mask.sum())))
        if count > 0:
            flat = wafer_values.reshape(-1)
            top = np.argpartition(flat, -count)[-count:]
            on_wafer.reshape(-1)[top] = FAIL
    grid = np.where(mask, on_wafer, OFF).astype(np.uint8)
    return grid


def rotate_grid(grid: np.ndarray, angle_degrees: float) -> np.ndarray:
    """Rotate the defect pattern about the wafer center.

    The wafer disk itself is rotation-invariant, so rotation only moves
    the PASS/FAIL content.  Nearest-neighbour sampling keeps the result
    a valid 3-level grid; die locations that rotate in from outside the
    original disk are filled as PASS.
    """
    from scipy import ndimage

    _check_grid(grid)
    angle = float(angle_degrees) % 360.0
    if angle == 0.0:
        return grid.copy()
    mask = grid != OFF
    rotated = ndimage.rotate(grid, angle, reshape=False, order=0, mode="constant", cval=OFF)
    result = np.where(mask, np.where(rotated == OFF, PASS, rotated), OFF)
    return result.astype(np.uint8)


def add_salt_pepper(
    grid: np.ndarray,
    flip_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flip a random fraction of on-wafer die labels (Algorithm 1, line 9).

    A flipped die switches PASS <-> FAIL; off-wafer locations are never
    touched.
    """
    _check_grid(grid)
    if not 0.0 <= flip_fraction <= 1.0:
        raise ValueError("flip_fraction must be in [0, 1]")
    result = grid.copy()
    on_wafer = np.flatnonzero(grid != OFF)
    count = int(round(flip_fraction * on_wafer.size))
    if count == 0:
        return result
    chosen = rng.choice(on_wafer, size=count, replace=False)
    flat = result.reshape(-1)
    flat[chosen] = np.where(flat[chosen] == PASS, FAIL, PASS)
    return result


def resize_grid(grid: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour resize of a die grid to ``size x size``.

    WM-811K maps come in many native resolutions and the paper scales
    them all to a fixed size; nearest-neighbour keeps the 3-level
    alphabet exact.
    """
    _check_grid(grid)
    h, w = grid.shape
    rows = (np.arange(size) * h / size).astype(np.intp)
    cols = (np.arange(size) * w / size).astype(np.intp)
    return grid[np.ix_(rows, cols)]


def failure_rate(grid: np.ndarray) -> float:
    """Fraction of on-wafer dies that fail; 0.0 for an all-off grid."""
    on_wafer = grid != OFF
    total = int(on_wafer.sum())
    if total == 0:
        return 0.0
    return float((grid[on_wafer] == FAIL).sum()) / total


def render_ascii(grid: np.ndarray) -> str:
    """Render a wafer map as ASCII art (``.`` off, ``o`` pass, ``#`` fail).

    Useful for examples and debugging in a terminal-only environment.
    """
    _check_grid(grid)
    chars = np.array([".", "o", "#"])
    return "\n".join("".join(row) for row in chars[grid])


def _check_grid(grid: np.ndarray) -> None:
    if grid.ndim != 2:
        raise ValueError(f"die grid must be 2-D, got shape {grid.shape}")
    if grid.dtype.kind not in "iu":
        raise ValueError(f"die grid must be integer, got dtype {grid.dtype}")
