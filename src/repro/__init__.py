"""repro — reproduction of "Wafer Map Defect Patterns Classification
using Deep Selective Learning" (Alawieh, Boning, Pan; DAC 2020).

Top-level layout:

* :mod:`repro.nn` — numpy deep-learning substrate (autograd, conv, Adam);
* :mod:`repro.data` — synthetic WM-811K wafer-map data substrate;
* :mod:`repro.core` — the paper's contribution: SelectiveNet CNN,
  auto-encoder augmentation, calibration, risk-coverage analysis;
* :mod:`repro.features` / :mod:`repro.svm` — the Radon+geometry feature
  SVM baseline of Wu et al. (TSM'15) the paper compares against;
* :mod:`repro.metrics` — evaluation metrics;
* :mod:`repro.obs` — observability: metrics registry, structured run
  logs, per-layer profiling, selective coverage monitoring;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> from repro.data import generate_paper_profile
>>> from repro.core import SelectiveWaferClassifier
>>> data = generate_paper_profile(scale=0.01, size=32)      # doctest: +SKIP
>>> clf = SelectiveWaferClassifier(target_coverage=0.5)     # doctest: +SKIP
>>> clf.fit(data["train"])                                  # doctest: +SKIP
>>> pred = clf.predict_dataset(data["test"])                # doctest: +SKIP
"""

__version__ = "1.0.0"

from . import core, data, metrics, nn, obs, viz

__all__ = ["core", "data", "metrics", "nn", "obs", "viz", "__version__"]
