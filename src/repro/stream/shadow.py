"""Shadow retraining and atomic promote/rollback.

The continual-operations loop closes here.  Labels trickling out of
the :class:`~repro.stream.queue.HumanLabelQueue` accumulate in a
:class:`LabelStore`, which holds back a validation slice (every
``holdback``-th label never trains).  When enough labels exist, the
:class:`ShadowTrainer` fine-tunes a *copy* of the serving model on the
training slice (the serving model is never touched), recalibrates the
acceptance threshold on the held-back slice, and writes a verified
checkpoint via :class:`~repro.resilience.checkpoint.CheckpointManager`.

The :class:`PromotionController` then runs the two-gate promotion:

1. **pre-gate** (cheap, in-process): the candidate's selective
   accuracy on the held-back label slice must clear
   ``min_candidate_accuracy`` — rejects a retrain that did not learn.
2. **swap + post-promote probe** (trusted): after
   :meth:`~repro.serve.engine.ServeEngine.swap_model` commits, the
   *serving path* is probed with the clean reference validation set.
   If accuracy on accepted wafers or coverage regresses beyond
   tolerance, the controller swaps straight back to the last good
   checkpoint — automatic rollback.  The reference set is the defense
   against poisoned labels: a retrain poisoned through the label queue
   can fool the pre-gate (its validation slice is drawn from the same
   poisoned stream) but not the trusted probe.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.calibration import threshold_for_coverage
from ..core.trainer import TrainConfig, Trainer
from ..data.dataset import WaferDataset
from ..obs.metrics import MetricsRegistry, default_registry
from ..resilience.checkpoint import CheckpointManager
from ..serve.engine import ServeEngine, SwapFailed
from .queue import LabeledWafer

__all__ = [
    "LabelStore",
    "ShadowTrainer",
    "CandidateReport",
    "PromotionReport",
    "PromotionController",
]


class LabelStore:
    """Accumulates human-labeled wafers, holding back a validation slice.

    Every ``holdback``-th usable label (novel flags carry no class and
    are excluded from both slices) goes to validation, the rest to
    training, deterministically by arrival index.
    """

    def __init__(self, class_names: Tuple[str, ...], holdback: int = 4) -> None:
        if holdback < 2:
            raise ValueError("holdback must be >= 2")
        self.class_names = tuple(class_names)
        self.holdback = int(holdback)
        self._train: List[LabeledWafer] = []
        self._val: List[LabeledWafer] = []
        self.novel_flags = 0
        self._usable_seen = 0

    def add(self, wafers: List[LabeledWafer]) -> None:
        for wafer in wafers:
            if wafer.label is None:
                self.novel_flags += 1
                continue
            if self._usable_seen % self.holdback == 0:
                self._val.append(wafer)
            else:
                self._train.append(wafer)
            self._usable_seen += 1

    @property
    def train_size(self) -> int:
        return len(self._train)

    @property
    def val_size(self) -> int:
        return len(self._val)

    def clear(self) -> None:
        """Drop accumulated labels (after they fed a retrain)."""
        self._train.clear()
        self._val.clear()

    def _dataset(self, wafers: List[LabeledWafer]) -> WaferDataset:
        return WaferDataset(
            grids=np.stack([w.grid for w in wafers]),
            labels=np.asarray([w.label for w in wafers], dtype=np.int64),
            class_names=self.class_names,
        )

    def train_dataset(self) -> WaferDataset:
        if not self._train:
            raise ValueError("label store has no training labels")
        return self._dataset(self._train)

    def val_dataset(self) -> WaferDataset:
        if not self._val:
            raise ValueError("label store has no held-back labels")
        return self._dataset(self._val)


@dataclass
class CandidateReport:
    """One shadow retrain: where it landed and how it scored."""

    checkpoint: str
    threshold: float
    val_accuracy: float
    val_coverage: float
    train_labels: int
    val_labels: int


class ShadowTrainer:
    """Fine-tunes a copy of a serving model on queued human labels."""

    def __init__(
        self,
        base_model,
        checkpoints: CheckpointManager,
        train_config: Optional[TrainConfig] = None,
        target_coverage: float = 0.75,
        run_logger=None,
    ) -> None:
        self.base_model = base_model
        self.checkpoints = checkpoints
        self.train_config = train_config if train_config is not None else TrainConfig(
            epochs=6, batch_size=16
        )
        self.target_coverage = float(target_coverage)
        self.run_logger = run_logger
        self.retrains = 0

    def retrain(self, store: LabelStore) -> CandidateReport:
        """Produce a calibrated candidate checkpoint from the store.

        The serving model is deep-copied first; training never touches
        the original.  The threshold is recalibrated for
        ``target_coverage`` on the held-back slice and stored in the
        checkpoint's ``extra`` payload so promotion can apply it.
        """
        train_data = store.train_dataset()
        validation = store.val_dataset()
        candidate = copy.deepcopy(self.base_model)
        config = TrainConfig(**{
            **self.train_config.__dict__,
            "target_coverage": self.target_coverage,
        })
        trainer = Trainer(candidate, config, run_logger=self.run_logger)
        trainer.fit(train_data, validation=validation)

        probabilities, scores = candidate.predict_batched(validation.tensors())
        correct = probabilities.argmax(axis=1) == validation.labels
        calibration = threshold_for_coverage(scores, self.target_coverage, correct)
        threshold = float(calibration.threshold)
        accepted = scores >= threshold
        val_coverage = float(accepted.mean()) if accepted.size else 0.0
        val_accuracy = (
            float(correct[accepted].mean()) if accepted.any() else 0.0
        )

        self.retrains += 1
        path = self.checkpoints.save(
            epoch=self.retrains,
            model=candidate,
            extra={
                "threshold": threshold,
                "val_accuracy": val_accuracy,
                "val_coverage": val_coverage,
                "train_labels": store.train_size,
                "val_labels": store.val_size,
            },
        )
        return CandidateReport(
            checkpoint=str(path),
            threshold=threshold,
            val_accuracy=val_accuracy,
            val_coverage=val_coverage,
            train_labels=store.train_size,
            val_labels=store.val_size,
        )


@dataclass
class PromotionReport:
    """Outcome of one promotion attempt."""

    #: "promoted" | "rejected_pre_gate" | "rolled_back" | "swap_failed"
    outcome: str
    candidate: CandidateReport
    generation: Optional[int] = None
    probe_accuracy: Optional[float] = None
    probe_coverage: Optional[float] = None
    detail: str = ""


class PromotionController:
    """Two-gate promote with automatic rollback on the trusted probe.

    ``reference`` is a clean, trusted validation
    :class:`~repro.data.dataset.WaferDataset` (e.g. the original
    training-time validation split) — the only data the controller
    believes unconditionally.  ``baseline_accuracy`` /
    ``baseline_coverage`` anchor the regression tolerances; they are
    re-anchored after every successful promotion.
    """

    def __init__(
        self,
        engine: ServeEngine,
        reference: WaferDataset,
        baseline_checkpoint: str,
        baseline_threshold: float,
        baseline_accuracy: float,
        baseline_coverage: float,
        min_candidate_accuracy: float = 0.6,
        accuracy_tolerance: float = 0.02,
        coverage_tolerance: float = 0.25,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.reference = reference
        self.last_good_checkpoint = baseline_checkpoint
        self.last_good_threshold = float(baseline_threshold)
        self.baseline_accuracy = float(baseline_accuracy)
        self.baseline_coverage = float(baseline_coverage)
        self.min_candidate_accuracy = float(min_candidate_accuracy)
        self.accuracy_tolerance = float(accuracy_tolerance)
        self.coverage_tolerance = float(coverage_tolerance)
        registry = registry if registry is not None else default_registry()
        self._promotes = registry.counter("stream.promotes")
        self._rollbacks = registry.counter("stream.rollbacks")
        self._rejects = registry.counter("stream.promotions_rejected")
        self.history: List[PromotionReport] = []

    # -- probing --------------------------------------------------------
    def probe(self) -> Tuple[float, float]:
        """Measure the *serving path* on the trusted reference set.

        Returns ``(accuracy_on_accepted, coverage)``; accuracy is 1.0
        by convention when nothing is accepted (coverage gate handles
        that case).
        """
        results = self.engine.classify_many(list(self.reference.grids))
        accepted = [
            (result, int(label))
            for result, label in zip(results, self.reference.labels)
            if result.accepted
        ]
        coverage = len(accepted) / len(results) if results else 0.0
        if not accepted:
            return 1.0, coverage
        correct = sum(1 for result, label in accepted if result.label == label)
        return correct / len(accepted), coverage

    # -- promotion ------------------------------------------------------
    def consider(self, candidate: CandidateReport) -> PromotionReport:
        """Run the full gate sequence on a candidate checkpoint."""
        report = self._consider(candidate)
        self.history.append(report)
        return report

    def _consider(self, candidate: CandidateReport) -> PromotionReport:
        if candidate.val_accuracy < self.min_candidate_accuracy:
            self._rejects.inc()
            return PromotionReport(
                outcome="rejected_pre_gate",
                candidate=candidate,
                detail=(
                    f"candidate val accuracy {candidate.val_accuracy:.3f} < "
                    f"{self.min_candidate_accuracy:.3f}"
                ),
            )
        try:
            swap = self.engine.swap_model(
                candidate.checkpoint, threshold=candidate.threshold
            )
        except SwapFailed as exc:
            self._rejects.inc()
            return PromotionReport(
                outcome="swap_failed", candidate=candidate, detail=str(exc)
            )
        accuracy, coverage = self.probe()
        accuracy_floor = self.baseline_accuracy - self.accuracy_tolerance
        coverage_floor = self.baseline_coverage - self.coverage_tolerance
        if accuracy < accuracy_floor or coverage < coverage_floor:
            rollback = self.engine.swap_model(
                self.last_good_checkpoint, threshold=self.last_good_threshold
            )
            self._rollbacks.inc()
            return PromotionReport(
                outcome="rolled_back",
                candidate=candidate,
                generation=rollback.generation,
                probe_accuracy=accuracy,
                probe_coverage=coverage,
                detail=(
                    f"post-promote probe accuracy {accuracy:.3f} "
                    f"(floor {accuracy_floor:.3f}) coverage {coverage:.3f} "
                    f"(floor {coverage_floor:.3f})"
                ),
            )
        self.last_good_checkpoint = candidate.checkpoint
        self.last_good_threshold = candidate.threshold
        self.baseline_accuracy = max(self.baseline_accuracy, accuracy)
        self.baseline_coverage = max(self.baseline_coverage, coverage)
        self._promotes.inc()
        return PromotionReport(
            outcome="promoted",
            candidate=candidate,
            generation=swap.generation,
            probe_accuracy=accuracy,
            probe_coverage=coverage,
        )

    def stats(self) -> Dict[str, Any]:
        return {
            "promotions": sum(
                1 for r in self.history if r.outcome == "promoted"
            ),
            "rollbacks": sum(
                1 for r in self.history if r.outcome == "rolled_back"
            ),
            "rejected": sum(
                1 for r in self.history
                if r.outcome in ("rejected_pre_gate", "swap_failed")
            ),
            "last_good_checkpoint": self.last_good_checkpoint,
            "baseline_accuracy": self.baseline_accuracy,
            "baseline_coverage": self.baseline_coverage,
        }
