"""Bounded human-labeling queue with budget accounting and an oracle.

When the selective model abstains (PAPER.md: rejected wafers "are
passed on for manual classification"), the wafer goes to a *human*
label queue.  Humans are a scarce, slow, imperfect resource, so the
queue is explicitly bounded three ways:

* **capacity** — at most ``capacity`` wafers waiting at once; beyond
  that, :class:`~repro.serve.batcher.Overloaded` with reason
  :data:`~repro.serve.batcher.SHED_LABEL_QUEUE_FULL`;
* **budget** — at most ``budget_per_window`` labels started per
  ``window_steps``-step accounting window
  (:data:`~repro.serve.batcher.SHED_LABEL_BUDGET` beyond that);
* **latency** — a label is not available until
  ``labeler.latency_steps`` stream steps after submission.

The oracle labeler is seeded per wafer id, so a replayed run yields
identical labels regardless of queue interleaving; ``accuracy`` < 1
models human error by swapping the label for a uniformly random wrong
class.  Novel wafers (:data:`~repro.stream.simulator.NOVEL_LABEL`)
come back labeled ``None`` — a human says "new pattern", not a class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from ..obs.metrics import MetricsRegistry, default_registry
from ..serve.batcher import SHED_LABEL_BUDGET, SHED_LABEL_QUEUE_FULL, Overloaded
from .simulator import NOVEL_LABEL

__all__ = ["OracleLabeler", "LabeledWafer", "HumanLabelQueue"]


@dataclass
class LabeledWafer:
    """A wafer that came back from the (simulated) human labeler."""

    wafer_id: int
    grid: np.ndarray
    #: Class index, or ``None`` when the human flagged a novel pattern.
    label: Optional[int]
    #: True label as known to the simulator (for accounting only —
    #: consumers must train on ``label``, the possibly-wrong human one).
    true_label: int
    submitted_step: int
    labeled_step: int


class OracleLabeler:
    """Deterministic simulated human: seeded per wafer id.

    Parameters
    ----------
    num_classes:
        Size of the known label vocabulary.
    accuracy:
        Probability the returned label equals the true label; errors
        are uniform over the remaining classes.
    latency_steps:
        Stream steps between submission and label availability.
    seed:
        Base seed; the per-wafer rng is ``default_rng((seed, wafer_id))``
        so labels are independent of queue order and replay-stable.
    """

    def __init__(self, num_classes: int, accuracy: float = 1.0,
                 latency_steps: int = 1, seed: int = 0) -> None:
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if latency_steps < 0:
            raise ValueError("latency_steps must be >= 0")
        self.num_classes = int(num_classes)
        self.accuracy = float(accuracy)
        self.latency_steps = int(latency_steps)
        self.seed = int(seed)

    def label(self, wafer_id: int, true_label: int) -> Optional[int]:
        """Produce the human's label for a wafer (pure per wafer id)."""
        if true_label == NOVEL_LABEL:
            return None
        rng = np.random.default_rng((self.seed, int(wafer_id)))
        if self.accuracy >= 1.0 or rng.random() < self.accuracy:
            return int(true_label)
        wrong = [c for c in range(self.num_classes) if c != true_label]
        return int(wrong[int(rng.integers(0, len(wrong)))])


class _Pending:
    __slots__ = ("wafer_id", "grid", "true_label", "submitted_step", "ready_step")

    def __init__(self, wafer_id: int, grid: np.ndarray, true_label: int,
                 submitted_step: int, ready_step: int) -> None:
        self.wafer_id = wafer_id
        self.grid = grid
        self.true_label = true_label
        self.submitted_step = submitted_step
        self.ready_step = ready_step


class HumanLabelQueue:
    """Bounded queue of abstained wafers awaiting human labels.

    ``submit`` enforces capacity and the per-window label budget (typed
    :class:`Overloaded` on violation); ``poll(step)`` returns every
    wafer whose simulated labeling latency has elapsed by ``step``.
    """

    def __init__(
        self,
        labeler: OracleLabeler,
        capacity: int = 256,
        budget_per_window: int = 64,
        window_steps: int = 10,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if budget_per_window < 1:
            raise ValueError("budget_per_window must be >= 1")
        if window_steps < 1:
            raise ValueError("window_steps must be >= 1")
        self.labeler = labeler
        self.capacity = int(capacity)
        self.budget_per_window = int(budget_per_window)
        self.window_steps = int(window_steps)
        self.registry = registry if registry is not None else default_registry()
        self._pending: Deque[_Pending] = deque()
        self._window_spend: Dict[int, int] = {}
        self.total_submitted = 0
        self.total_labeled = 0
        self.total_shed_full = 0
        self.total_shed_budget = 0
        self._depth_gauge = self.registry.gauge("stream.label_queue.depth")
        self._submitted_counter = self.registry.counter("stream.label_queue.submitted")
        self._labeled_counter = self.registry.counter("stream.label_queue.labeled")
        self._shed_counters = {
            SHED_LABEL_QUEUE_FULL: self.registry.counter(
                "stream.label_queue.shed.queue_full"
            ),
            SHED_LABEL_BUDGET: self.registry.counter(
                "stream.label_queue.shed.budget"
            ),
        }

    # -- submission -----------------------------------------------------
    def submit(self, wafer_id: int, grid: np.ndarray, true_label: int,
               step: int) -> None:
        """Queue a wafer for labeling at stream step ``step``.

        Raises :class:`Overloaded` with a typed reason when the queue
        is at capacity or this window's label budget is spent.
        """
        if len(self._pending) >= self.capacity:
            self.total_shed_full += 1
            self._shed_counters[SHED_LABEL_QUEUE_FULL].inc()
            raise Overloaded(
                f"label queue at capacity ({self.capacity})",
                reason=SHED_LABEL_QUEUE_FULL,
            )
        window = step // self.window_steps
        if self._window_spend.get(window, 0) >= self.budget_per_window:
            self.total_shed_budget += 1
            self._shed_counters[SHED_LABEL_BUDGET].inc()
            raise Overloaded(
                f"label budget ({self.budget_per_window}/{self.window_steps} steps) "
                f"spent for window {window}",
                reason=SHED_LABEL_BUDGET,
            )
        self._window_spend[window] = self._window_spend.get(window, 0) + 1
        self._pending.append(_Pending(
            wafer_id=int(wafer_id),
            grid=np.asarray(grid),
            true_label=int(true_label),
            submitted_step=int(step),
            ready_step=int(step) + self.labeler.latency_steps,
        ))
        self.total_submitted += 1
        self._submitted_counter.inc()
        self._depth_gauge.set(len(self._pending))

    # -- retrieval ------------------------------------------------------
    def poll(self, step: int) -> List[LabeledWafer]:
        """Collect every wafer whose label is ready by ``step``."""
        ready: List[LabeledWafer] = []
        while self._pending and self._pending[0].ready_step <= step:
            item = self._pending.popleft()
            ready.append(LabeledWafer(
                wafer_id=item.wafer_id,
                grid=item.grid,
                label=self.labeler.label(item.wafer_id, item.true_label),
                true_label=item.true_label,
                submitted_step=item.submitted_step,
                labeled_step=int(step),
            ))
        if ready:
            self.total_labeled += len(ready)
            self._labeled_counter.inc(len(ready))
            self._depth_gauge.set(len(self._pending))
        return ready

    # -- accounting -----------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._pending)

    def budget_remaining(self, step: int) -> int:
        """Labels still affordable in ``step``'s accounting window."""
        window = step // self.window_steps
        return max(0, self.budget_per_window - self._window_spend.get(window, 0))

    def stats(self) -> Dict[str, Any]:
        return {
            "depth": self.depth,
            "capacity": self.capacity,
            "budget_per_window": self.budget_per_window,
            "window_steps": self.window_steps,
            "total_submitted": self.total_submitted,
            "total_labeled": self.total_labeled,
            "total_shed_queue_full": self.total_shed_full,
            "total_shed_budget": self.total_shed_budget,
            "labels_spent_by_window": dict(sorted(self._window_spend.items())),
        }
