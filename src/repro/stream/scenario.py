"""Deterministic fab-scale continual-operations scenario.

One function — :func:`run_scenario` — exercises the whole loop the
paper's deployment setting implies but never operationalizes:

1. train + calibrate a selective classifier on clean wafers, then
   serve it through a :class:`~repro.serve.engine.ServeEngine`;
2. replay a scripted :class:`~repro.stream.simulator.WaferStream`
   whose distribution shifts mid-run (elevated background noise +
   novel out-of-vocabulary patterns);
3. the :class:`~repro.stream.router.AbstentionRouter` routes
   abstentions to the budgeted human label queue; the
   :class:`~repro.obs.monitor.SelectiveMonitor` detects the coverage
   collapse (**time-to-detect**);
4. once enough human labels accumulate, the
   :class:`~repro.stream.shadow.ShadowTrainer` fine-tunes a copy and
   the :class:`~repro.stream.shadow.PromotionController` promotes it
   atomically (**time-to-recover**), with the trusted-probe rollback
   armed;
5. optional legs: a *poisoned* retrain (labels deliberately flipped)
   that must be auto-rolled back, and a *chaos* sweep that raises at
   every ``serve.swap.*`` fault point and asserts the serving
   generation never tears.

Determinism: every stochastic input is derived from ``config.seed``
(stream batches from ``(seed, step)``, oracle labels from
``(seed, wafer_id)``, training from ``TrainConfig.seed``), batching is
pinned (one full batch per step, no cache, one in-process lane), and
swaps happen between steps — so the per-step decision trace, and hence
:func:`~repro.stream.scenario.decision_digest`, is a pure function of
the config.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.cnn import BackboneConfig
from ..core.pipeline import SelectiveWaferClassifier
from ..core.trainer import TrainConfig
from ..data.generator import generate_dataset
from ..obs.metrics import MetricsRegistry
from ..obs.monitor import SelectiveMonitor
from ..resilience.chaos import ChaosPlan, active_plan, raise_error
from ..resilience.checkpoint import CheckpointManager
from ..serve.engine import ServeConfig, ServeEngine, SwapFailed
from .queue import HumanLabelQueue, OracleLabeler
from .router import AbstentionRouter
from .shadow import LabelStore, PromotionController, ShadowTrainer
from .simulator import (
    NOVEL_LABEL,
    EpisodeSpec,
    StreamConfig,
    WaferStream,
    save_stream_trace,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "SWAP_FAULT_POINTS",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "decision_digest",
]

SCENARIO_SCHEMA_VERSION = 1

#: Every chaos fault point on the atomic-swap path, in firing order.
SWAP_FAULT_POINTS = (
    "serve.swap.verify",
    "serve.swap.load",
    "serve.swap.build",
    "serve.swap.commit",
)


@dataclass
class ScenarioConfig:
    """Everything :func:`run_scenario` needs, seed included.

    The default distribution is None-heavy (half the stream is
    defect-free wafers), the realistic fab shape and the regime where
    ambiguity-zone background noise collapses realized coverage — the
    paper's shift signature (Sec. IV-D).
    """

    classes: Tuple[str, ...] = ("Center", "Edge-Ring", "None")
    class_weights: Tuple[float, ...] = (0.25, 0.25, 0.5)
    size: int = 16
    wafers_per_step: int = 16
    seed: int = 0

    # Baseline training (counts proportional to class_weights).
    train_total: int = 200
    val_total: int = 50
    epochs: int = 10
    target_coverage: float = 0.5

    # Stream script.  The shift puts every generator's background
    # failure rate in the ambiguity zone between "None" (<= 0.04) and
    # "Random" (>= 0.18) — see make_shifted_dataset — plus two-pattern
    # wafers and novel out-of-vocabulary patterns.
    clean_steps: int = 6
    shift_steps: int = 22
    shift_background_rate: Tuple[float, float] = (0.07, 0.12)
    shift_mixed_fraction: float = 0.5
    shift_novel_fraction: float = 0.25

    # Detection / labeling / retraining.
    monitor_window: int = 48
    monitor_min_samples: int = 32
    queue_capacity: int = 96
    label_budget_per_window: int = 40
    budget_window_steps: int = 5
    oracle_accuracy: float = 1.0
    oracle_latency_steps: int = 1
    min_labels_to_retrain: int = 48
    retrain_epochs: int = 12

    # Promotion gates.
    min_candidate_accuracy: float = 0.6
    accuracy_tolerance: float = 0.05
    coverage_tolerance: float = 0.3

    # Optional legs.
    poison_leg: bool = True
    chaos_leg: bool = True

    def monitor_min_coverage(self) -> float:
        """Alert threshold: half the calibrated coverage target, the
        monitor docstring's practical setting for shift detection."""
        return 0.5 * self.target_coverage


@dataclass
class ScenarioResult:
    """Everything the scenario measured, JSON-serializable via
    :meth:`to_payload`."""

    config: ScenarioConfig
    steps: List[Dict[str, Any]]
    detect_step: Optional[int]
    promote_step: Optional[int]
    shift_start_step: int
    time_to_detect: Optional[int]
    time_to_recover: Optional[int]
    phase_metrics: Dict[str, Dict[str, float]]
    label_stats: Dict[str, Any]
    router_stats: Dict[str, Any]
    promotion_history: List[Dict[str, Any]]
    generations: List[int]
    poison_outcome: Optional[str]
    chaos_results: List[Dict[str, Any]]
    trace_digest: str
    decision_digest: str
    baseline_accuracy: float
    baseline_coverage: float

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "schema": SCENARIO_SCHEMA_VERSION,
            "kind": "stream_scenario",
            "seed": self.config.seed,
            "classes": list(self.config.classes),
            "wafers_per_step": self.config.wafers_per_step,
            "total_steps": len(self.steps),
            "shift_start_step": self.shift_start_step,
            "detect_step": self.detect_step,
            "promote_step": self.promote_step,
            "time_to_detect": self.time_to_detect,
            "time_to_recover": self.time_to_recover,
            "baseline_accuracy": self.baseline_accuracy,
            "baseline_coverage": self.baseline_coverage,
            "phase_metrics": self.phase_metrics,
            "label_stats": self.label_stats,
            "router_stats": self.router_stats,
            "promotion_history": self.promotion_history,
            "generations": self.generations,
            "poison_outcome": self.poison_outcome,
            "chaos_results": self.chaos_results,
            "trace_digest": self.trace_digest,
            "decision_digest": self.decision_digest,
        }
        return payload


def decision_digest(steps: List[Dict[str, Any]]) -> str:
    """Order-sensitive digest of the per-step decision trace."""
    digest = hashlib.sha256()
    for record in steps:
        digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _step_accuracy(outcome, labels: np.ndarray) -> Dict[str, float]:
    """Coverage plus accuracy over accepted *in-vocabulary* wafers.

    Novel wafers have no correct known class; the model's job there is
    to abstain, tracked separately as ``novel_accepted``.
    """
    accepted_known = 0
    correct_known = 0
    novel_total = 0
    novel_accepted = 0
    for result, label in zip(outcome.results, labels):
        label = int(label)
        if label == NOVEL_LABEL:
            novel_total += 1
            if result.accepted:
                novel_accepted += 1
            continue
        if result.accepted:
            accepted_known += 1
            if result.label == label:
                correct_known += 1
    return {
        "coverage": outcome.coverage,
        "accepted_known": accepted_known,
        "correct_known": correct_known,
        "novel_total": novel_total,
        "novel_accepted": novel_accepted,
    }


def _phase_summary(step_stats: List[Dict[str, float]]) -> Dict[str, float]:
    """Aggregate per-step stats over one phase."""
    if not step_stats:
        return {"steps": 0, "coverage": 0.0, "accuracy": 0.0,
                "novel_accept_rate": 0.0}
    accepted = sum(s["accepted_known"] for s in step_stats)
    correct = sum(s["correct_known"] for s in step_stats)
    novel = sum(s["novel_total"] for s in step_stats)
    novel_acc = sum(s["novel_accepted"] for s in step_stats)
    return {
        "steps": len(step_stats),
        "coverage": float(np.mean([s["coverage"] for s in step_stats])),
        "accuracy": correct / accepted if accepted else 0.0,
        "novel_accept_rate": novel_acc / novel if novel else 0.0,
    }


def _chaos_sweep(engine: ServeEngine, checkpoint: str,
                 threshold: float, probe: np.ndarray) -> List[Dict[str, Any]]:
    """Raise at every swap fault point; the generation must not tear.

    For each point: arm a plan that raises mid-swap, attempt an
    otherwise-valid swap, and require (a) :class:`SwapFailed`, (b) the
    serving generation unchanged, (c) the engine still serving.
    """
    results: List[Dict[str, Any]] = []
    for point in SWAP_FAULT_POINTS:
        generation_before = engine.generation
        plan = ChaosPlan()
        plan.inject(point, raise_error(RuntimeError(f"chaos at {point}")))
        failed = False
        with active_plan(plan):
            try:
                engine.swap_model(checkpoint, threshold=threshold)
            except SwapFailed:
                failed = True
        still_serving = engine.classify(probe).generation == generation_before
        results.append({
            "point": point,
            "swap_failed": failed,
            "generation_before": generation_before,
            "generation_after": engine.generation,
            "still_serving_old_generation": still_serving,
            "ok": failed and engine.generation == generation_before
            and still_serving,
        })
    return results


def run_scenario(
    config: ScenarioConfig,
    workdir: str,
    trace_path: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ScenarioResult:
    """Run the full continual-operations scenario; see module docstring.

    ``workdir`` receives the baseline and shadow checkpoint
    directories; ``trace_path`` (optional) receives the stream's
    episode trace JSONL.
    """
    import os

    registry = registry if registry is not None else MetricsRegistry()
    classes = tuple(config.classes)
    num_classes = len(classes)

    # -- 1. baseline model --------------------------------------------
    weights = np.asarray(config.class_weights, dtype=float)
    weights = weights / weights.sum()
    counts_train = {
        name: max(8, int(round(config.train_total * w)))
        for name, w in zip(classes, weights)
    }
    counts_val = {
        name: max(4, int(round(config.val_total * w)))
        for name, w in zip(classes, weights)
    }
    train_data = generate_dataset(
        counts_train, size=config.size, seed=config.seed,
        class_names=classes, native_size_range=None,
    )
    val_data = generate_dataset(
        counts_val, size=config.size, seed=config.seed + 1,
        class_names=classes, native_size_range=None,
    )
    classifier = SelectiveWaferClassifier(
        target_coverage=config.target_coverage,
        backbone=BackboneConfig(
            input_size=config.size, conv_channels=(8, 8),
            conv_kernels=(3, 3), fc_units=16, seed=config.seed,
        ),
        train=TrainConfig(
            epochs=config.epochs, batch_size=16, seed=config.seed,
        ),
    )
    classifier.fit(train_data, validation=val_data, calibrate=True)
    model = classifier.model
    baseline_threshold = float(model.threshold)

    baseline_manager = CheckpointManager(
        os.path.join(workdir, "baseline"), keep=2, registry=registry
    )
    baseline_checkpoint = baseline_manager.save(
        epoch=0, model=model, extra={"threshold": baseline_threshold}
    )

    # -- 2. stream script ---------------------------------------------
    stream = WaferStream(
        StreamConfig(
            classes=classes, class_weights=tuple(config.class_weights),
            size=config.size,
            wafers_per_step=config.wafers_per_step, seed=config.seed,
        ),
        [
            EpisodeSpec("clean", steps=config.clean_steps),
            EpisodeSpec(
                "novel",
                steps=config.shift_steps,
                background_rate=config.shift_background_rate,
                mixed_fraction=config.shift_mixed_fraction,
                novel_fraction=config.shift_novel_fraction,
            ),
        ],
    )
    records = stream.trace_records()
    if trace_path is not None:
        trace_digest = save_stream_trace(trace_path, stream, records)
    else:
        from .simulator import stream_trace_digest

        trace_digest = stream_trace_digest(records)
    shift_start_step = config.clean_steps

    # -- 3. serving + routing stack -----------------------------------
    engine = ServeEngine(model, ServeConfig(
        # One full batch per step flushes on size, never on deadline;
        # cache off and a single in-process lane keep the decision
        # trace a pure function of the seed.
        max_batch_size=config.wafers_per_step,
        max_latency_ms=200.0,
        queue_limit=max(4 * config.wafers_per_step, len(val_data)),
        cache_bytes=0,
        num_replicas=1,
        threshold=baseline_threshold,
    ), registry=registry)
    try:
        monitor = SelectiveMonitor(
            model,
            min_coverage=config.monitor_min_coverage(),
            window=config.monitor_window,
            min_samples=config.monitor_min_samples,
            threshold=baseline_threshold,
            class_names=classes,
            registry=registry,
        )
        queue = HumanLabelQueue(
            OracleLabeler(
                num_classes=num_classes,
                accuracy=config.oracle_accuracy,
                latency_steps=config.oracle_latency_steps,
                seed=config.seed + 7,
            ),
            capacity=config.queue_capacity,
            budget_per_window=config.label_budget_per_window,
            window_steps=config.budget_window_steps,
            registry=registry,
        )
        router = AbstentionRouter(engine, queue, monitor)
        store = LabelStore(classes, holdback=4)
        shadow = ShadowTrainer(
            model,
            CheckpointManager(
                os.path.join(workdir, "shadow"), keep=4, registry=registry
            ),
            train_config=TrainConfig(
                epochs=config.retrain_epochs, batch_size=16,
                learning_rate=5e-4, seed=config.seed,
            ),
            target_coverage=config.target_coverage,
        )
        controller = PromotionController(
            engine,
            reference=val_data,
            baseline_checkpoint=str(baseline_checkpoint),
            baseline_threshold=baseline_threshold,
            baseline_accuracy=0.0,   # re-anchored from the live probe below
            baseline_coverage=0.0,
            min_candidate_accuracy=config.min_candidate_accuracy,
            accuracy_tolerance=config.accuracy_tolerance,
            coverage_tolerance=config.coverage_tolerance,
            registry=registry,
        )
        baseline_accuracy, baseline_coverage = controller.probe()
        controller.baseline_accuracy = baseline_accuracy
        controller.baseline_coverage = baseline_coverage

        # -- 4. the stream loop ---------------------------------------
        steps: List[Dict[str, Any]] = []
        pre_stats: List[Dict[str, float]] = []
        drift_stats: List[Dict[str, float]] = []
        post_stats: List[Dict[str, float]] = []
        generations: List[int] = []
        detect_step: Optional[int] = None
        promote_step: Optional[int] = None

        for step in range(stream.total_steps):
            batch = stream.batch(step)
            outcome = router.route(batch)
            labeled = queue.poll(step)
            if detect_step is not None:
                # The retrain store opens at detection: labels for
                # wafers abstained *after* the alert describe the new
                # regime; earlier ones are routine QC of the old one.
                store.add([
                    w for w in labeled if w.submitted_step >= detect_step
                ])
            stats = _step_accuracy(outcome, batch.labels)
            if step < shift_start_step:
                pre_stats.append(stats)
            elif promote_step is None:
                drift_stats.append(stats)
            else:
                post_stats.append(stats)
            if outcome.alerts and detect_step is None:
                detect_step = step
            promoted_now = False
            promotion_outcome = None
            if (
                detect_step is not None
                and promote_step is None
                and store.train_size >= config.min_labels_to_retrain
            ):
                candidate = shadow.retrain(store)
                report = controller.consider(candidate)
                promotion_outcome = report.outcome
                if report.outcome == "promoted":
                    promote_step = step
                    promoted_now = True
            generations.append(engine.generation)
            steps.append({
                "step": step,
                "kind": batch.kind,
                "generation": engine.generation,
                "accepted": outcome.accepted,
                "abstained": outcome.abstained,
                "queued": outcome.queued,
                "shed": dict(sorted(outcome.shed.items())),
                "alerts": [a.kind for a in outcome.alerts],
                "promotion": promotion_outcome,
                "promoted": promoted_now,
                "labels_banked": store.train_size + store.val_size,
            })

        phase_metrics = {
            "pre_shift": _phase_summary(pre_stats),
            "during_shift": _phase_summary(drift_stats),
            "post_promote": _phase_summary(post_stats),
        }

        # -- 5. poisoned-retrain leg ----------------------------------
        # Labels flipped by a fixed permutation are *internally
        # consistent*: the candidate trained on them scores well on its
        # own (equally poisoned) held-back slice and sails through the
        # pre-gate.  Only the trusted reference probe — clean data the
        # label queue never touched — can catch it, which is exactly
        # the rollback path this leg pins.  The poison trainer runs
        # hotter than the honest one so the flipped mapping is actually
        # learned (a poison that fails to train is caught by the
        # pre-gate instead, proving nothing about rollback).
        poison_outcome: Optional[str] = None
        if config.poison_leg and (store.train_size and store.val_size):
            poisoned = LabelStore(classes, holdback=store.holdback)
            for bucket_name in ("_train", "_val"):
                for wafer in getattr(store, bucket_name):
                    flipped = copy_wafer(wafer, (wafer.label + 1) % num_classes)
                    getattr(poisoned, bucket_name).append(flipped)
            poison_shadow = ShadowTrainer(
                model,
                shadow.checkpoints,
                train_config=TrainConfig(
                    epochs=max(20, 2 * config.retrain_epochs),
                    batch_size=16, learning_rate=3e-3, seed=config.seed,
                ),
                target_coverage=config.target_coverage,
            )
            candidate = poison_shadow.retrain(poisoned)
            poison_outcome = controller.consider(candidate).outcome

        # -- 6. chaos sweep over the swap fault points ----------------
        chaos_results: List[Dict[str, Any]] = []
        if config.chaos_leg:
            chaos_results = _chaos_sweep(
                engine,
                controller.last_good_checkpoint,
                controller.last_good_threshold,
                probe=val_data.grids[0],
            )

        router_stats = router.stats()
        label_stats = queue.stats()
        promotion_history = [
            {
                "outcome": r.outcome,
                "generation": r.generation,
                "probe_accuracy": r.probe_accuracy,
                "probe_coverage": r.probe_coverage,
                "checkpoint": r.candidate.checkpoint,
                "detail": r.detail,
            }
            for r in controller.history
        ]
    finally:
        engine.close()

    return ScenarioResult(
        config=config,
        steps=steps,
        detect_step=detect_step,
        promote_step=promote_step,
        shift_start_step=shift_start_step,
        time_to_detect=(
            detect_step - shift_start_step if detect_step is not None else None
        ),
        time_to_recover=(
            promote_step - shift_start_step if promote_step is not None else None
        ),
        phase_metrics=phase_metrics,
        label_stats=label_stats,
        router_stats=router_stats,
        promotion_history=promotion_history,
        generations=generations,
        poison_outcome=poison_outcome,
        chaos_results=chaos_results,
        trace_digest=trace_digest,
        decision_digest=decision_digest(steps),
        baseline_accuracy=baseline_accuracy,
        baseline_coverage=baseline_coverage,
    )


def copy_wafer(wafer, new_label: int):
    """A LabeledWafer clone with a different (e.g. poisoned) label."""
    from .queue import LabeledWafer

    return LabeledWafer(
        wafer_id=wafer.wafer_id,
        grid=wafer.grid,
        label=int(new_label),
        true_label=wafer.true_label,
        submitted_step=wafer.submitted_step,
        labeled_step=wafer.labeled_step,
    )
