"""Abstention router: the triage step between serving and humans.

For each stream step the router submits the batch to the
:class:`~repro.serve.engine.ServeEngine`, splits results into
*accepted* (the model committed to a class) and *abstained* (the
selection head rejected the wafer), and routes abstentions to the
bounded :class:`~repro.stream.queue.HumanLabelQueue`.  Wafers the
queue sheds (capacity or budget) are *lost* — exactly the operational
cost the label budget models — and counted by typed shed reason.

Every step is also folded into a :class:`~repro.obs.monitor.
SelectiveMonitor`, whose schema-v2 drift alerts (per-class acceptance
breakdown + ``uniform_drift`` / ``class_collapse`` kind) are what the
continual-operations loop keys retraining on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.selective import ABSTAIN, SelectivePrediction
from ..obs.monitor import CoverageAlert, SelectiveMonitor
from ..serve.batcher import Overloaded
from ..serve.engine import ServeEngine, ServeResult
from .queue import HumanLabelQueue
from .simulator import NOVEL_LABEL, StreamBatch

__all__ = ["StepOutcome", "AbstentionRouter"]


@dataclass
class StepOutcome:
    """Everything that happened to one stream step's batch."""

    step: int
    kind: str
    generation: int
    results: List[ServeResult]
    accepted: int
    abstained: int
    queued: int
    shed: Dict[str, int]
    alerts: List[CoverageAlert] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = self.accepted + self.abstained
        return self.accepted / total if total else 0.0

    def accuracy_on_accepted(self, labels: np.ndarray) -> Optional[float]:
        """Accuracy over accepted wafers (novel wafers are always
        wrong for the model — there is no correct known class).
        Returns ``None`` when nothing was accepted."""
        correct = 0
        total = 0
        for result, label in zip(self.results, labels):
            if not result.accepted:
                continue
            total += 1
            if int(label) != NOVEL_LABEL and result.label == int(label):
                correct += 1
        return correct / total if total else None


class AbstentionRouter:
    """Route each step's batch: accept → downstream, abstain → humans."""

    def __init__(
        self,
        engine: ServeEngine,
        queue: HumanLabelQueue,
        monitor: Optional[SelectiveMonitor] = None,
    ) -> None:
        self.engine = engine
        self.queue = queue
        self.monitor = monitor
        self.total_accepted = 0
        self.total_abstained = 0
        self.total_queued = 0
        self.total_shed: Dict[str, int] = {}

    def route(self, batch: StreamBatch) -> StepOutcome:
        """Serve one stream batch and route its abstentions."""
        results = self.engine.classify_many(list(batch.grids))
        alerts: List[CoverageAlert] = []
        if self.monitor is not None:
            before = len(self.monitor.alerts)
            self.monitor.observe(_as_prediction(results))
            alerts = self.monitor.alerts[before:]
        queued = 0
        shed: Dict[str, int] = {}
        accepted = 0
        base_id = batch.step * len(results)
        for offset, result in enumerate(results):
            if result.accepted:
                accepted += 1
                continue
            try:
                self.queue.submit(
                    wafer_id=base_id + offset,
                    grid=batch.grids[offset],
                    true_label=int(batch.labels[offset]),
                    step=batch.step,
                )
                queued += 1
            except Overloaded as exc:
                shed[exc.reason] = shed.get(exc.reason, 0) + 1
        abstained = len(results) - accepted
        self.total_accepted += accepted
        self.total_abstained += abstained
        self.total_queued += queued
        for reason, count in shed.items():
            self.total_shed[reason] = self.total_shed.get(reason, 0) + count
        return StepOutcome(
            step=batch.step,
            kind=batch.kind,
            generation=max(r.generation for r in results) if results else 0,
            results=results,
            accepted=accepted,
            abstained=abstained,
            queued=queued,
            shed=shed,
            alerts=alerts,
        )

    def stats(self) -> Dict[str, Any]:
        return {
            "total_accepted": self.total_accepted,
            "total_abstained": self.total_abstained,
            "total_queued": self.total_queued,
            "total_shed": dict(self.total_shed),
        }


def _as_prediction(results: List[ServeResult]) -> SelectivePrediction:
    """Reassemble engine results into the monitor's input shape."""
    accepted = np.asarray([r.accepted for r in results], dtype=bool)
    raw = np.asarray([r.raw_label for r in results], dtype=np.int64)
    return SelectivePrediction(
        labels=np.where(accepted, raw, ABSTAIN),
        raw_labels=raw,
        selection_scores=np.asarray(
            [r.selection_score for r in results], dtype=np.float32
        ),
        accepted=accepted,
        probabilities=np.stack([r.probabilities for r in results]),
    )
