"""``repro.stream`` — continual operations for the fab wafer stream.

The paper's deployment setting (Sec. I) is an open-ended stream whose
distribution drifts; its selective model hands rejected wafers "on for
manual classification".  This package operationalizes the complete
loop around those two facts:

* :mod:`~repro.stream.simulator` — seeded, replayable
  :class:`WaferStream` with scripted concept-shift episodes (elevated
  background noise, mixed patterns, novel out-of-vocabulary classes)
  and a digest-stamped JSONL episode trace;
* :mod:`~repro.stream.queue` — :class:`HumanLabelQueue`, the bounded
  manual-classification queue: typed ``Overloaded`` sheds on capacity
  and per-window label budget, seeded oracle labeler with configurable
  latency and accuracy;
* :mod:`~repro.stream.router` — :class:`AbstentionRouter`, the triage
  between :class:`~repro.serve.engine.ServeEngine` and humans, feeding
  the drift-classifying :class:`~repro.obs.monitor.SelectiveMonitor`;
* :mod:`~repro.stream.shadow` — :class:`ShadowTrainer` (fine-tune a
  copy on queued labels, never the serving model) and
  :class:`PromotionController` (pre-gate, atomic
  :meth:`~repro.serve.engine.ServeEngine.swap_model`, trusted-probe
  auto-rollback);
* :mod:`~repro.stream.scenario` — :func:`run_scenario`, the
  deterministic end-to-end harness measuring time-to-detect,
  time-to-recover, and label budget spent, with poisoned-retrain and
  chaos-at-every-swap-point legs.

``python -m repro.stream.smoke`` asserts the whole loop; the committed
benchmark lives at ``benchmarks/perf/BENCH_stream.json``.
"""

from .queue import HumanLabelQueue, LabeledWafer, OracleLabeler
from .router import AbstentionRouter, StepOutcome
from .scenario import (
    SCENARIO_SCHEMA_VERSION,
    SWAP_FAULT_POINTS,
    ScenarioConfig,
    ScenarioResult,
    decision_digest,
    run_scenario,
)
from .shadow import (
    CandidateReport,
    LabelStore,
    PromotionController,
    PromotionReport,
    ShadowTrainer,
)
from .simulator import (
    NOVEL_LABEL,
    TRACE_SCHEMA_VERSION,
    EpisodeSpec,
    StreamBatch,
    StreamConfig,
    WaferStream,
    load_stream_trace,
    save_stream_trace,
    stream_trace_digest,
)

__all__ = [
    "NOVEL_LABEL",
    "TRACE_SCHEMA_VERSION",
    "SCENARIO_SCHEMA_VERSION",
    "SWAP_FAULT_POINTS",
    "EpisodeSpec",
    "StreamBatch",
    "StreamConfig",
    "WaferStream",
    "save_stream_trace",
    "load_stream_trace",
    "stream_trace_digest",
    "OracleLabeler",
    "LabeledWafer",
    "HumanLabelQueue",
    "AbstentionRouter",
    "StepOutcome",
    "LabelStore",
    "ShadowTrainer",
    "CandidateReport",
    "PromotionController",
    "PromotionReport",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "decision_digest",
]
