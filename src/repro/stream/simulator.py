"""Seeded, replayable wafer-stream simulator with scheduled shifts.

The fab deployment story (PAPER.md Sec. I) is a *stream*: wafers
arrive continuously and the input distribution moves under the model's
feet.  :class:`WaferStream` scripts that movement as a sequence of
:class:`EpisodeSpec` episodes:

* ``clean`` — in-distribution wafers, the training distribution;
* ``noise`` — the concept-shift mechanics of
  :func:`repro.experiments.concept_shift.make_shifted_dataset`:
  background failure rates pushed into the ambiguity zone between the
  None class and the Random class, plus optional two-pattern wafers;
* ``novel`` — a fraction of wafers replaced with patterns from
  *outside* the training vocabulary
  (:mod:`repro.data.patterns.novel`: Grid / Half-Moon /
  Checkerboard), tagged :data:`NOVEL_LABEL` — no in-vocabulary ground
  truth exists for them.

Determinism contract: every step's batch is generated from
``(config.seed, step)`` alone, so ``batch(step)`` is pure — any run
(or partial replay) of the same configured stream produces
byte-identical wafers in any order.  Like ``serve.loadgen`` traces,
the episode trace serializes to JSONL with a content digest
(:func:`stream_trace_digest`) so two runs can prove they saw the same
stream.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.patterns import CLASS_NAMES, make_generator
from ..data.patterns.novel import NOVEL_PATTERN_CLASSES, make_novel_generator

__all__ = [
    "NOVEL_LABEL",
    "TRACE_SCHEMA_VERSION",
    "EpisodeSpec",
    "StreamBatch",
    "StreamConfig",
    "WaferStream",
    "save_stream_trace",
    "load_stream_trace",
    "stream_trace_digest",
]

#: Ground-truth marker for wafers drawn from a novel (out-of-vocabulary)
#: pattern: there is no correct in-vocabulary label, the right model
#: behavior is to abstain, and the right oracle behavior is to flag the
#: wafer as a new pattern instead of forcing a known class.
NOVEL_LABEL = -2

#: Episode-trace JSONL header schema.
TRACE_SCHEMA_VERSION = 1

_EPISODE_KINDS = ("clean", "noise", "novel")


@dataclass(frozen=True)
class EpisodeSpec:
    """One scripted phase of the stream.

    ``background_rate`` overrides every generator's background failure
    range for the episode (``None`` keeps each pattern's default);
    ``novel_fraction`` of wafers are replaced with novel patterns;
    ``mixed_fraction`` of (non-novel) wafers become two-pattern maps.
    """

    kind: str
    steps: int
    background_rate: Optional[Tuple[float, float]] = None
    novel_fraction: float = 0.0
    mixed_fraction: float = 0.0
    novel_patterns: Tuple[str, ...] = tuple(sorted(NOVEL_PATTERN_CLASSES))

    def __post_init__(self) -> None:
        if self.kind not in _EPISODE_KINDS:
            raise ValueError(f"kind must be one of {_EPISODE_KINDS}, got {self.kind!r}")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if not 0.0 <= self.novel_fraction <= 1.0:
            raise ValueError("novel_fraction must be in [0, 1]")
        if not 0.0 <= self.mixed_fraction <= 1.0:
            raise ValueError("mixed_fraction must be in [0, 1]")
        unknown = set(self.novel_patterns) - set(NOVEL_PATTERN_CLASSES)
        if unknown:
            raise ValueError(f"unknown novel patterns: {sorted(unknown)}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "steps": self.steps,
            "background_rate": list(self.background_rate)
            if self.background_rate is not None else None,
            "novel_fraction": self.novel_fraction,
            "mixed_fraction": self.mixed_fraction,
            "novel_patterns": list(self.novel_patterns),
        }


@dataclass(frozen=True)
class StreamConfig:
    """Geometry and vocabulary of the simulated stream.

    ``class_weights`` sets the label draw distribution — a real fab
    stream is dominated by defect-free ("None") wafers, so weights
    like ``(0.25, 0.25, 0.5)`` are the realistic shape.  ``None``
    means uniform.
    """

    classes: Tuple[str, ...] = ("Center", "Edge-Ring", "None")
    class_weights: Optional[Tuple[float, ...]] = None
    size: int = 16
    wafers_per_step: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        unknown = set(self.classes) - set(CLASS_NAMES)
        if unknown:
            raise ValueError(f"classes outside the vocabulary: {sorted(unknown)}")
        if self.wafers_per_step <= 0:
            raise ValueError("wafers_per_step must be positive")
        if self.class_weights is not None:
            if len(self.class_weights) != len(self.classes):
                raise ValueError("class_weights must match classes")
            if any(w < 0 for w in self.class_weights) or sum(self.class_weights) <= 0:
                raise ValueError("class_weights must be non-negative, sum > 0")

    def probabilities(self) -> np.ndarray:
        if self.class_weights is None:
            return np.full(len(self.classes), 1.0 / len(self.classes))
        weights = np.asarray(self.class_weights, dtype=float)
        return weights / weights.sum()


@dataclass
class StreamBatch:
    """One step's wafers: grids + ground truth + provenance."""

    step: int
    episode: int
    kind: str
    #: ``(N, H, W)`` uint8 die grids.
    grids: np.ndarray
    #: Class index into ``config.classes`` per wafer, or
    #: :data:`NOVEL_LABEL` for out-of-vocabulary wafers.
    labels: np.ndarray

    def record(self) -> Dict[str, Any]:
        """Trace record: everything but the pixels (those are covered
        by the CRC so replays can prove byte identity cheaply)."""
        return {
            "step": self.step,
            "episode": self.episode,
            "kind": self.kind,
            "labels": [int(label) for label in self.labels],
            "grids_crc32": zlib.crc32(np.ascontiguousarray(self.grids).tobytes()),
        }


class WaferStream:
    """A scripted stream: ``batch(step)`` is a pure function of config.

    >>> stream = WaferStream(StreamConfig(seed=1), [
    ...     EpisodeSpec("clean", steps=5),
    ...     EpisodeSpec("novel", steps=5, background_rate=(0.15, 0.25),
    ...                 novel_fraction=0.4),
    ... ])
    >>> stream.total_steps
    10
    >>> batch = stream.batch(7)
    >>> batch.kind
    'novel'
    """

    def __init__(self, config: StreamConfig, episodes: Sequence[EpisodeSpec]) -> None:
        if not episodes:
            raise ValueError("at least one episode is required")
        self.config = config
        self.episodes: Tuple[EpisodeSpec, ...] = tuple(episodes)
        self._episode_of_step: List[int] = []
        for index, episode in enumerate(self.episodes):
            self._episode_of_step.extend([index] * episode.steps)

    @property
    def total_steps(self) -> int:
        return len(self._episode_of_step)

    def episode_at(self, step: int) -> EpisodeSpec:
        return self.episodes[self._episode_of_step[step]]

    def batch(self, step: int) -> StreamBatch:
        """Generate step ``step``'s wafers (pure; order-independent)."""
        if not 0 <= step < self.total_steps:
            raise IndexError(f"step {step} outside [0, {self.total_steps})")
        episode_index = self._episode_of_step[step]
        episode = self.episodes[episode_index]
        rng = np.random.default_rng((self.config.seed, step))
        size = self.config.size
        class_probabilities = self.config.probabilities()
        # Two-pattern wafers never mix in "None" (matching
        # make_shifted_dataset: a defect superimposed on nothing is
        # just the defect) and keep the first component's label.
        partner_pool = [c for c in self.config.classes if c != "None"]
        grids: List[np.ndarray] = []
        labels: List[int] = []
        for _ in range(self.config.wafers_per_step):
            if episode.novel_fraction and rng.random() < episode.novel_fraction:
                name = str(rng.choice(episode.novel_patterns))
                generator = make_novel_generator(name, size=size)
                if episode.background_rate is not None:
                    generator.background_rate = episode.background_rate
                grids.append(generator.sample(rng))
                labels.append(NOVEL_LABEL)
                continue
            label = int(rng.choice(len(self.config.classes), p=class_probabilities))
            name = self.config.classes[label]
            generator = make_generator(name, size=size)
            if episode.background_rate is not None:
                generator.background_rate = episode.background_rate
            partners = [c for c in partner_pool if c != name]
            if (
                episode.mixed_fraction
                and name != "None"
                and partners
                and rng.random() < episode.mixed_fraction
            ):
                from ..data.patterns import MixedPattern

                partner = make_generator(str(rng.choice(partners)), size=size)
                mixed = MixedPattern(size=size, components=(generator, partner))
                if episode.background_rate is not None:
                    mixed.background_rate = episode.background_rate
                grids.append(mixed.sample(rng))
            else:
                grids.append(generator.sample(rng))
            labels.append(label)
        return StreamBatch(
            step=step,
            episode=episode_index,
            kind=episode.kind,
            grids=np.stack(grids),
            labels=np.asarray(labels, dtype=np.int64),
        )

    def trace_records(self) -> List[Dict[str, Any]]:
        """Materialize the full episode trace (regenerates every batch)."""
        return [self.batch(step).record() for step in range(self.total_steps)]

    def header(self) -> Dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": "stream_trace",
            "classes": list(self.config.classes),
            "class_weights": list(self.config.class_weights)
            if self.config.class_weights is not None else None,
            "size": self.config.size,
            "wafers_per_step": self.config.wafers_per_step,
            "seed": self.config.seed,
            "episodes": [episode.to_dict() for episode in self.episodes],
        }


def save_stream_trace(path: str, stream: WaferStream,
                      records: Optional[List[Dict[str, Any]]] = None) -> str:
    """Write the episode trace: one header line, one JSON line per step.

    Returns the trace digest (also stamped into the header line).
    """
    if records is None:
        records = stream.trace_records()
    digest = stream_trace_digest(records)
    header = dict(stream.header(), trace_digest=digest)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return digest


def load_stream_trace(path: str) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Load a saved trace; returns ``(records, header)``."""
    with open(path, "r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("schema") != TRACE_SCHEMA_VERSION or header.get(
            "kind"
        ) != "stream_trace":
            raise ValueError(f"{path} is not a schema-{TRACE_SCHEMA_VERSION} stream trace")
        records = [json.loads(line) for line in handle if line.strip()]
    return records, header


def stream_trace_digest(records: Sequence[Dict[str, Any]]) -> str:
    """Order-sensitive content digest of an episode trace."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
