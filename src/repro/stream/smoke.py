"""End-to-end continual-operations smoke: ``python -m repro.stream.smoke``.

Runs the full :func:`~repro.stream.scenario.run_scenario` loop on a
small seeded configuration and *asserts* the operational contract:

* the concept shift is detected (a drift alert fires after the shift
  starts, never before);
* human labels accumulate within the queue's capacity/budget bounds;
* the shadow retrain promotes atomically (generation advances, every
  in-flight request carries a valid generation);
* post-promote accuracy on accepted known-class wafers recovers to
  within 2 points of the pre-shift baseline;
* a poisoned retrain is automatically rolled back by the trusted
  probe;
* raising at every ``serve.swap.*`` chaos fault point leaves the old
  generation serving (no torn swap).

Exit code 0 means the whole loop holds together.
"""

from __future__ import annotations

import json
import sys
import tempfile

from .scenario import ScenarioConfig, run_scenario

#: Recovery contract gated here and in ``scripts/check.sh``:
#: post-promote accuracy may trail the pre-shift baseline by at most
#: this much (absolute, on accepted known-class wafers).
RECOVERY_TOLERANCE = 0.02


def main(argv=None) -> int:
    config = ScenarioConfig(seed=0)
    with tempfile.TemporaryDirectory(prefix="stream-smoke-") as workdir:
        result = run_scenario(config, workdir=workdir)

    failures = []

    def check(ok: bool, label: str) -> None:
        print(f"  {'ok' if ok else 'FAIL':4s} {label}")
        if not ok:
            failures.append(label)

    print("stream smoke: continual-operations scenario")
    pre = result.phase_metrics["pre_shift"]
    post = result.phase_metrics["post_promote"]
    check(result.detect_step is not None, "drift detected")
    check(
        result.detect_step is None
        or result.detect_step >= result.shift_start_step,
        "no alert before the shift",
    )
    check(result.promote_step is not None, "shadow retrain promoted")
    check(
        any(r["outcome"] == "promoted" for r in result.promotion_history),
        "promotion recorded",
    )
    check(
        result.generations == sorted(result.generations),
        "generations monotonically non-decreasing",
    )
    check(
        result.label_stats["depth"] <= result.label_stats["capacity"],
        "label queue stayed within capacity",
    )
    check(
        all(
            spent <= result.label_stats["budget_per_window"]
            for spent in result.label_stats["labels_spent_by_window"].values()
        ),
        "label budget respected per window",
    )
    check(
        post["steps"] > 0
        and post["accuracy"] >= pre["accuracy"] - RECOVERY_TOLERANCE,
        f"recovered: post-promote accuracy {post['accuracy']:.3f} >= "
        f"pre-shift {pre['accuracy']:.3f} - {RECOVERY_TOLERANCE}",
    )
    check(result.poison_outcome == "rolled_back", "poisoned retrain rolled back")
    check(
        bool(result.chaos_results)
        and all(r["ok"] for r in result.chaos_results),
        "chaos at every swap fault point left the old generation serving",
    )

    print(json.dumps({
        "time_to_detect": result.time_to_detect,
        "time_to_recover": result.time_to_recover,
        "labels_spent": result.label_stats["total_submitted"],
        "pre_shift": pre,
        "during_shift": result.phase_metrics["during_shift"],
        "post_promote": post,
        "decision_digest": result.decision_digest,
    }, indent=2))
    if failures:
        print(f"stream smoke FAILED: {failures}", file=sys.stderr)
        return 1
    print("stream smoke passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
