"""Terminal visualization helpers (ASCII charts)."""

from .ascii_plot import bar_chart, line_plot, scatter_plot

__all__ = ["line_plot", "scatter_plot", "bar_chart"]
