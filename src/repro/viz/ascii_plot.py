"""Terminal (ASCII) plotting for a display-free environment.

The paper's Fig. 5 is a two-series line chart; these helpers render
such charts as monospace text so experiment runners can show the
curves directly in a terminal or log file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["line_plot", "scatter_plot", "bar_chart"]


def _scale(values: np.ndarray, low: float, high: float, bins: int) -> np.ndarray:
    """Map values in [low, high] to integer cells [0, bins-1]."""
    if high == low:
        return np.zeros(len(values), dtype=int)
    scaled = (values - low) / (high - low) * (bins - 1)
    return np.clip(np.round(scaled).astype(int), 0, bins - 1)


def line_plot(
    x: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "",
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Parameters
    ----------
    x:
        Shared x positions.
    series:
        ``(name, y_values)`` pairs; each series gets its own glyph
        (``*``, ``o``, ``+``, ``x``, ...) and a legend line.
    y_range:
        Fixed y-axis limits; inferred from the data when omitted.

    >>> chart = line_plot([0, 1], [("acc", [0.5, 1.0])], width=20, height=5)
    >>> "acc" in chart
    True
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0 or not series:
        raise ValueError("line_plot needs at least one point and one series")
    glyphs = "*o+x@%&"
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series])
    if y_range is None:
        y_low, y_high = float(all_y.min()), float(all_y.max())
        if y_low == y_high:
            y_low -= 0.5
            y_high += 0.5
    else:
        y_low, y_high = y_range

    canvas = [[" "] * width for _ in range(height)]
    columns = _scale(x, float(x.min()), float(x.max()), width)
    for index, (_, y_values) in enumerate(series):
        y_values = np.asarray(y_values, dtype=float)
        if y_values.shape != x.shape:
            raise ValueError("every series must match x in length")
        rows = _scale(y_values, y_low, y_high, height)
        glyph = glyphs[index % len(glyphs)]
        previous = None
        for column, row in zip(columns, rows):
            canvas[height - 1 - row][column] = glyph
            if previous is not None:
                # Linear interpolation between consecutive points.
                c0, r0 = previous
                steps = max(abs(column - c0), abs(row - r0))
                for step in range(1, steps):
                    ci = c0 + round((column - c0) * step / steps)
                    ri = r0 + round((row - r0) * step / steps)
                    if canvas[height - 1 - ri][ci] == " ":
                        canvas[height - 1 - ri][ci] = "."
            previous = (column, row)

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.2f} "
    bottom_label = f"{y_low:.2f} "
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * pad + "+" + "-" * width)
    x_axis = f"{x.min():g}".ljust(width - 8) + f"{x.max():g}"
    lines.append(" " * (pad + 1) + x_axis)
    if x_label:
        lines.append(" " * (pad + 1) + x_label)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, (name, _) in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def scatter_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Single-series scatter without interpolation."""
    return line_plot(
        np.asarray(x), [("points", np.asarray(y))], width=width, height=height, title=title
    )


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart, one row per label.

    >>> print(bar_chart(["a"], [1.0], width=4))   # doctest: +SKIP
    a  |#### 1.00
    """
    values = np.asarray(values, dtype=float)
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if len(values) == 0:
        raise ValueError("bar_chart needs at least one bar")
    peak = values.max() if values.max() > 0 else 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{str(label).rjust(label_width)} |{bar} {value:.2f}")
    return "\n".join(lines)
