"""Binary soft-margin kernel SVM trained by Sequential Minimal
Optimization (Platt, 1998; simplified working-set variant).

This is the classifier engine behind the paper's baseline [2].  The
implementation follows the classic simplified SMO: iterate over
Lagrange multipliers violating the KKT conditions, pair each with a
second multiplier chosen to maximize the step, and solve the 2-variable
subproblem analytically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .kernels import Kernel, get_kernel

__all__ = ["BinarySVM"]


class BinarySVM:
    """Soft-margin binary SVM with labels in {-1, +1}.

    Parameters
    ----------
    c:
        Box constraint (regularization); larger fits harder margins.
    kernel:
        Kernel name ('linear', 'rbf', 'poly') or a callable Gram
        function.
    gamma:
        RBF/poly bandwidth; 'scale' mimics the common
        ``1 / (D * var(X))`` heuristic.
    tol:
        KKT violation tolerance.
    max_passes:
        Number of consecutive full passes without updates before
        declaring convergence.
    """

    def __init__(
        self,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iterations: int = 200,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        self.c = float(c)
        self.kernel_name = kernel if isinstance(kernel, str) else "custom"
        self._kernel_arg = kernel
        self.gamma = gamma
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iterations = int(max_iterations)
        self.seed = seed

        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._kernel: Optional[Kernel] = None

    # ------------------------------------------------------------------
    def _resolve_kernel(self, features: np.ndarray) -> Kernel:
        if callable(self._kernel_arg):
            return self._kernel_arg
        gamma = self.gamma
        if gamma == "scale":
            variance = features.var()
            gamma = 1.0 / (features.shape[1] * variance) if variance > 0 else 1.0
        return get_kernel(self.kernel_name, gamma=float(gamma))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BinarySVM":
        """Train on ``(N, D)`` features with labels in {-1, +1}."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if set(np.unique(labels)) - {-1.0, 1.0}:
            raise ValueError("labels must be -1 or +1")
        if len(np.unique(labels)) < 2:
            raise ValueError("need both classes present to fit a binary SVM")

        n = len(features)
        rng = np.random.default_rng(self.seed)
        self._kernel = self._resolve_kernel(features)
        gram = self._kernel(features, features)

        alphas = np.zeros(n)
        bias = 0.0
        passes = 0
        iteration = 0
        while passes < self.max_passes and iteration < self.max_iterations:
            changed = 0
            # Cached decision values for all samples under current alphas.
            decision = (alphas * labels) @ gram + bias
            errors = decision - labels
            for i in range(n):
                error_i = float((alphas * labels) @ gram[:, i] + bias - labels[i])
                violates = (
                    (labels[i] * error_i < -self.tol and alphas[i] < self.c)
                    or (labels[i] * error_i > self.tol and alphas[i] > 0)
                )
                if not violates:
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                error_j = float((alphas * labels) @ gram[:, j] + bias - labels[j])

                alpha_i_old = alphas[i]
                alpha_j_old = alphas[j]
                if labels[i] != labels[j]:
                    low = max(0.0, alphas[j] - alphas[i])
                    high = min(self.c, self.c + alphas[j] - alphas[i])
                else:
                    low = max(0.0, alphas[i] + alphas[j] - self.c)
                    high = min(self.c, alphas[i] + alphas[j])
                if low == high:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alphas[j] -= labels[j] * (error_i - error_j) / eta
                alphas[j] = float(np.clip(alphas[j], low, high))
                if abs(alphas[j] - alpha_j_old) < 1e-5:
                    continue
                alphas[i] += labels[i] * labels[j] * (alpha_j_old - alphas[j])

                b1 = (
                    bias
                    - error_i
                    - labels[i] * (alphas[i] - alpha_i_old) * gram[i, i]
                    - labels[j] * (alphas[j] - alpha_j_old) * gram[i, j]
                )
                b2 = (
                    bias
                    - error_j
                    - labels[i] * (alphas[i] - alpha_i_old) * gram[i, j]
                    - labels[j] * (alphas[j] - alpha_j_old) * gram[j, j]
                )
                if 0 < alphas[i] < self.c:
                    bias = b1
                elif 0 < alphas[j] < self.c:
                    bias = b2
                else:
                    bias = (b1 + b2) / 2.0
                changed += 1
            passes = passes + 1 if changed == 0 else 0
            iteration += 1

        support = alphas > 1e-8
        self.support_vectors_ = features[support]
        self.dual_coef_ = (alphas * labels)[support]
        self.intercept_ = float(bias)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the separating surface."""
        if self.support_vectors_ is None:
            raise RuntimeError("SVM is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if len(self.support_vectors_) == 0:
            return np.full(len(features), self.intercept_)
        gram = self._kernel(features, self.support_vectors_)
        return gram @ self.dual_coef_ + self.intercept_

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard {-1, +1} predictions."""
        return np.where(self.decision_function(features) >= 0.0, 1.0, -1.0)

    @property
    def n_support_(self) -> int:
        """Number of support vectors after fitting."""
        if self.support_vectors_ is None:
            raise RuntimeError("SVM is not fitted")
        return len(self.support_vectors_)
