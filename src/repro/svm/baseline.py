"""The complete SVM baseline pipeline of Wu et al. (TSM'15).

Feature extraction (Radon + density + geometry) -> standardization ->
one-vs-one RBF SVM.  This is the comparator the paper's Table III
reports at 91% accuracy (vs 94% for the CNN).  The expert-relabeling
step of [2] is intentionally omitted, matching the paper's "without
human intervention" protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..data.dataset import WaferDataset
from ..features.pipeline import extract_dataset_features
from .multiclass import OneVsOneSVM
from .scaler import StandardScaler

__all__ = ["SVMBaseline"]


@dataclass
class SVMBaseline:
    """Fit/predict wrapper: wafer datasets in, class labels out.

    Parameters mirror the underlying :class:`BinarySVM`; the defaults
    (RBF kernel, C=10) perform well on the synthetic WM-811K profile.
    """

    c: float = 10.0
    kernel: str = "rbf"
    gamma: float | str = "scale"
    max_iterations: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        self.scaler = StandardScaler()
        self.model: Optional[OneVsOneSVM] = None
        self.class_names: tuple = ()

    def fit(self, train: WaferDataset) -> "SVMBaseline":
        """Extract features, scale, and train the one-vs-one SVM."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.class_names = train.class_names
        features = self.scaler.fit_transform(extract_dataset_features(train))
        self.model = OneVsOneSVM(
            c=self.c,
            kernel=self.kernel,
            gamma=self.gamma,
            max_iterations=self.max_iterations,
            seed=self.seed,
        )
        self.model.fit(features, train.labels)
        return self

    def predict(self, dataset: WaferDataset) -> np.ndarray:
        """Predict integer class labels for a dataset."""
        if self.model is None:
            raise RuntimeError("baseline is not fitted")
        features = self.scaler.transform(extract_dataset_features(dataset))
        return self.model.predict(features)
