"""Margin-based selective classification for the SVM baseline.

The paper's reject option is exclusive to the CNN; a natural question
is how much of the benefit plain baselines can recover by abstaining on
small decision margins.  This module equips the one-vs-one SVM with a
selection score — the victory margin between the top-voted and
runner-up classes (vote difference, with summed decision margins as a
continuous tie-breaker) — and the same threshold-calibration machinery
the CNN uses, enabling apples-to-apples risk-coverage comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.calibration import CalibrationResult, threshold_for_coverage
from ..core.selective import ABSTAIN, SelectivePrediction
from ..data.dataset import WaferDataset
from .baseline import SVMBaseline

__all__ = ["SelectiveSVM"]


@dataclass
class SelectiveSVM:
    """Wrap a fitted :class:`SVMBaseline` with margin-based rejection.

    Parameters
    ----------
    baseline:
        A fitted SVM baseline.
    threshold:
        Margin threshold; samples with a smaller victory margin
        abstain.  Calibrate with :meth:`calibrate_coverage`.
    """

    baseline: SVMBaseline
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.baseline.model is None:
            raise ValueError("baseline must be fitted before wrapping")
        self.calibration: Optional[CalibrationResult] = None

    # ------------------------------------------------------------------
    def margins(self, dataset: WaferDataset) -> np.ndarray:
        """Victory margin per sample: top vote score minus runner-up."""
        from ..features.pipeline import extract_dataset_features

        features = self.baseline.scaler.transform(extract_dataset_features(dataset))
        model = self.baseline.model
        n = len(features)
        if n == 0:
            return np.empty((0,), dtype=np.float64)
        votes = np.zeros((n, len(model.classes_)))
        decision_sums = np.zeros((n, len(model.classes_)))
        for (a, b), binary in model.models_.items():
            decision = binary.decision_function(features)
            winner_a = decision >= 0
            votes[winner_a, a] += 1
            votes[~winner_a, b] += 1
            decision_sums[:, a] += decision
            decision_sums[:, b] -= decision
        margin_range = np.abs(decision_sums).max() + 1.0
        scores = votes + decision_sums / (margin_range * 10.0)
        ordered = np.sort(scores, axis=1)
        return ordered[:, -1] - ordered[:, -2]

    def calibrate_coverage(
        self, dataset: WaferDataset, target_coverage: float
    ) -> CalibrationResult:
        """Choose the margin threshold hitting ``target_coverage``."""
        margins = self.margins(dataset)
        predictions = self.baseline.predict(dataset)
        correct = predictions == dataset.labels
        self.calibration = threshold_for_coverage(margins, target_coverage, correct)
        self.threshold = self.calibration.threshold
        return self.calibration

    def predict_selective(
        self, dataset: WaferDataset, threshold: Optional[float] = None
    ) -> SelectivePrediction:
        """Selective inference with margin-based abstention."""
        tau = self.threshold if threshold is None else float(threshold)
        margins = self.margins(dataset)
        raw_labels = (
            self.baseline.predict(dataset)
            if len(dataset)
            else np.empty((0,), dtype=np.int64)
        )
        accepted = margins >= tau
        num_classes = dataset.num_classes
        probabilities = np.zeros((len(dataset), num_classes), dtype=np.float32)
        if len(dataset):
            probabilities[np.arange(len(dataset)), raw_labels] = 1.0
        return SelectivePrediction(
            labels=np.where(accepted, raw_labels, ABSTAIN).astype(np.int64),
            raw_labels=np.asarray(raw_labels, dtype=np.int64),
            selection_scores=margins.astype(np.float32),
            accepted=accepted,
            probabilities=probabilities,
        )
