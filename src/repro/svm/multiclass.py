"""Multi-class SVM strategies: one-vs-one and one-vs-rest.

The WM-811K baseline [2] uses a one-vs-one kernel SVM (the libsvm
default).  Both reductions are provided; one-vs-one votes across all
class pairs, one-vs-rest takes the argmax decision value.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np

from .smo import BinarySVM

__all__ = ["OneVsOneSVM", "OneVsRestSVM"]


class OneVsOneSVM:
    """One-vs-one multi-class SVM with majority voting.

    Ties are broken by the summed decision-function margins of the
    involved pairs, which avoids biasing toward low class indices.
    """

    def __init__(self, **svm_kwargs) -> None:
        self.svm_kwargs = svm_kwargs
        self.models_: Dict[Tuple[int, int], BinarySVM] = {}
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsOneSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self.models_ = {}
        for a, b in combinations(range(len(self.classes_)), 2):
            mask = (labels == self.classes_[a]) | (labels == self.classes_[b])
            pair_features = features[mask]
            pair_labels = np.where(labels[mask] == self.classes_[a], 1.0, -1.0)
            model = BinarySVM(**self.svm_kwargs)
            model.fit(pair_features, pair_labels)
            self.models_[(a, b)] = model
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        n = len(features)
        votes = np.zeros((n, len(self.classes_)))
        margins = np.zeros((n, len(self.classes_)))
        for (a, b), model in self.models_.items():
            decision = model.decision_function(features)
            winner_a = decision >= 0
            votes[winner_a, a] += 1
            votes[~winner_a, b] += 1
            margins[:, a] += decision
            margins[:, b] -= decision
        # Majority vote with margin tie-breaks: add an epsilon-scaled
        # margin so it only matters between equal vote counts.
        margin_range = np.abs(margins).max() + 1.0
        scores = votes + margins / (margin_range * 10.0)
        return self.classes_[scores.argmax(axis=1)]


class OneVsRestSVM:
    """One-vs-rest multi-class SVM taking the argmax decision value."""

    def __init__(self, **svm_kwargs) -> None:
        self.svm_kwargs = svm_kwargs
        self.models_: List[BinarySVM] = []
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsRestSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self.models_ = []
        for value in self.classes_:
            binary_labels = np.where(labels == value, 1.0, -1.0)
            model = BinarySVM(**self.svm_kwargs)
            model.fit(features, binary_labels)
            self.models_.append(model)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return np.stack([m.decision_function(features) for m in self.models_], axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[self.decision_function(features).argmax(axis=1)]
