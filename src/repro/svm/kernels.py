"""Kernel functions for the SVM baseline."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["linear_kernel", "rbf_kernel", "polynomial_kernel", "get_kernel", "Kernel"]

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gram matrix ``K[i, j] = <a_i, b_j>``."""
    return a @ b.T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian RBF ``K[i, j] = exp(-gamma * ||a_i - b_j||^2)``."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    a_sq = (a ** 2).sum(axis=1)[:, None]
    b_sq = (b ** 2).sum(axis=1)[None, :]
    squared = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * squared)


def polynomial_kernel(
    a: np.ndarray, b: np.ndarray, degree: int = 3, coef0: float = 1.0, gamma: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(gamma <a, b> + coef0)^degree``."""
    return (gamma * (a @ b.T) + coef0) ** degree


def get_kernel(name: str, gamma: float = 1.0, degree: int = 3, coef0: float = 1.0) -> Kernel:
    """Build a kernel closure by name: 'linear', 'rbf', or 'poly'."""
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        return lambda a, b: rbf_kernel(a, b, gamma=gamma)
    if name == "poly":
        return lambda a, b: polynomial_kernel(a, b, degree=degree, coef0=coef0, gamma=gamma)
    raise ValueError(f"unknown kernel {name!r}; expected 'linear', 'rbf' or 'poly'")
