"""From-scratch SVM classifiers (SMO) for the paper's baseline."""

from .baseline import SVMBaseline
from .selective_svm import SelectiveSVM
from .kernels import get_kernel, linear_kernel, polynomial_kernel, rbf_kernel
from .multiclass import OneVsOneSVM, OneVsRestSVM
from .scaler import StandardScaler
from .smo import BinarySVM

__all__ = [
    "BinarySVM",
    "SelectiveSVM",
    "OneVsOneSVM",
    "OneVsRestSVM",
    "StandardScaler",
    "SVMBaseline",
    "linear_kernel",
    "rbf_kernel",
    "polynomial_kernel",
    "get_kernel",
]
