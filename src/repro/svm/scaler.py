"""Feature standardization for the SVM pipeline."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Zero-mean, unit-variance feature scaling.

    Constant features (zero variance) are left centered but unscaled,
    avoiding division blow-ups on degenerate synthetic feature columns.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (N, D)")
        if len(features) == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
