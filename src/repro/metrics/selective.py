"""Metrics specific to selective (reject-option) classification.

These compute the quantities in Tables II and IV: per-class coverage
(number of samples the model chooses to label), selective per-class
precision/recall/F1 computed over accepted samples only, selective
accuracy, and the original-vs-selective recall comparison used in the
leave-one-class-out study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.selective import ABSTAIN, SelectivePrediction
from .classification import ClassMetrics, accuracy, confusion_matrix, per_class_metrics

__all__ = [
    "SelectiveClassReport",
    "SelectiveEvaluation",
    "evaluate_selective",
    "selective_accuracy",
    "per_class_coverage",
]


def selective_accuracy(prediction: SelectivePrediction, true_labels: np.ndarray) -> float:
    """Accuracy over the accepted samples only (Eq. 7 with 0/1 loss)."""
    true_labels = np.asarray(true_labels)
    mask = prediction.accepted
    if not mask.any():
        return 0.0
    return accuracy(true_labels[mask], prediction.labels[mask])


def per_class_coverage(
    prediction: SelectivePrediction,
    true_labels: np.ndarray,
    num_classes: int,
) -> np.ndarray:
    """Count of accepted samples per *true* class (Table II "Cov")."""
    true_labels = np.asarray(true_labels)
    counts = np.zeros(num_classes, dtype=np.int64)
    accepted_labels = true_labels[prediction.accepted]
    np.add.at(counts, accepted_labels, 1)
    return counts


@dataclass
class SelectiveClassReport:
    """Table II row: selective Prec/Rec/F1 plus coverage for one class."""

    precision: float
    recall: float
    f1: float
    covered: int
    support: int

    @property
    def coverage_fraction(self) -> float:
        if self.support == 0:
            return 0.0
        return self.covered / self.support


@dataclass
class SelectiveEvaluation:
    """Full evaluation of a selective prediction against ground truth."""

    class_reports: Dict[str, SelectiveClassReport]
    overall_accuracy: float
    overall_coverage: float
    covered_count: int
    total_count: int
    full_coverage_accuracy: float
    confusion: np.ndarray

    def summary_rows(self) -> Sequence[tuple]:
        """(name, precision, recall, f1, covered) rows in class order."""
        return [
            (name, report.precision, report.recall, report.f1, report.covered)
            for name, report in self.class_reports.items()
        ]


def evaluate_selective(
    prediction: SelectivePrediction,
    true_labels: np.ndarray,
    class_names: Sequence[str],
) -> SelectiveEvaluation:
    """Compute the Table II metric set for one selective prediction.

    Per-class precision/recall/F1 are computed on the accepted subset
    (samples the model labeled); coverage counts accepted samples per
    true class; ``full_coverage_accuracy`` ignores the reject option
    (Table IV's "Original" column uses the recall analogue).
    """
    true_labels = np.asarray(true_labels)
    names = list(class_names)
    num_classes = len(names)
    mask = prediction.accepted

    if mask.any():
        matrix = confusion_matrix(true_labels[mask], prediction.labels[mask], num_classes)
    else:
        matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    base_metrics = per_class_metrics(matrix, names)
    coverage_counts = per_class_coverage(prediction, true_labels, num_classes)
    supports = np.bincount(true_labels, minlength=num_classes)

    reports = {
        name: SelectiveClassReport(
            precision=base_metrics[name].precision,
            recall=base_metrics[name].recall,
            f1=base_metrics[name].f1,
            covered=int(coverage_counts[index]),
            support=int(supports[index]),
        )
        for index, name in enumerate(names)
    }
    return SelectiveEvaluation(
        class_reports=reports,
        overall_accuracy=selective_accuracy(prediction, true_labels),
        overall_coverage=prediction.coverage,
        covered_count=int(mask.sum()),
        total_count=int(true_labels.size),
        full_coverage_accuracy=accuracy(true_labels, prediction.raw_labels),
        confusion=matrix,
    )
