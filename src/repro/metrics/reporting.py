"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
these helpers format them consistently in a terminal-only environment.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_confusion_matrix", "format_percent"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (``0.941`` -> ``94.1%``)."""
    return f"{100.0 * value:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are fixed to ``float_digits``; everything else is ``str()``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float) and not isinstance(cell, bool):
                rendered.append(f"{cell:.{float_digits}f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_confusion_matrix(
    matrix: np.ndarray,
    class_names: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render a confusion matrix with true classes as rows."""
    matrix = np.asarray(matrix)
    names = list(class_names)
    if matrix.shape != (len(names), len(names)):
        raise ValueError("matrix shape must match class_names")
    headers = ["true\\pred"] + names
    rows = [[name] + [int(v) for v in matrix[i]] for i, name in enumerate(names)]
    return format_table(headers, rows, title=title)
