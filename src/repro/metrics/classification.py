"""Standard multi-class classification metrics.

Implemented from scratch (no sklearn offline): confusion matrices,
per-class precision/recall/F1, and accuracy — the metrics Tables II and
III of the paper report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy",
    "ClassMetrics",
    "per_class_metrics",
    "macro_f1",
    "defect_detection_rate",
]


def confusion_matrix(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    num_classes: int,
) -> np.ndarray:
    """Rows = true class, columns = predicted class (paper's layout).

    Predictions outside ``[0, num_classes)`` (e.g. the ABSTAIN marker)
    are rejected — filter abstained samples out first.
    """
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays must have the same shape")
    if true_labels.size and (
        predicted_labels.min() < 0 or predicted_labels.max() >= num_classes
    ):
        raise ValueError("predicted labels out of range; drop abstentions first")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (true_labels, predicted_labels), 1)
    return matrix


def accuracy(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Plain accuracy; 0.0 on empty input."""
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.size == 0:
        return 0.0
    return float((true_labels == predicted_labels).mean())


@dataclass
class ClassMetrics:
    """Precision / recall / F1 / support for one class."""

    precision: float
    recall: float
    f1: float
    support: int


def per_class_metrics(
    matrix: np.ndarray,
    class_names: Optional[Sequence[str]] = None,
) -> Dict[str, ClassMetrics]:
    """Per-class metrics from a confusion matrix.

    Undefined ratios (no predictions, or no true samples) are reported
    as 0.0, matching the convention the paper's Table II uses for
    classes the model never selects.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("confusion matrix must be square")
    num_classes = matrix.shape[0]
    names = list(class_names) if class_names is not None else [str(i) for i in range(num_classes)]
    if len(names) != num_classes:
        raise ValueError("class_names length must match matrix size")

    results: Dict[str, ClassMetrics] = {}
    for index, name in enumerate(names):
        true_positive = float(matrix[index, index])
        predicted = float(matrix[:, index].sum())
        actual = float(matrix[index, :].sum())
        precision = true_positive / predicted if predicted > 0 else 0.0
        recall = true_positive / actual if actual > 0 else 0.0
        denominator = precision + recall
        f1 = 2 * precision * recall / denominator if denominator > 0 else 0.0
        results[name] = ClassMetrics(
            precision=precision, recall=recall, f1=f1, support=int(actual)
        )
    return results


def macro_f1(matrix: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    metrics = per_class_metrics(matrix)
    if not metrics:
        return 0.0
    return float(np.mean([m.f1 for m in metrics.values()]))


def defect_detection_rate(
    matrix: np.ndarray,
    class_names: Sequence[str],
    none_class: str = "None",
) -> float:
    """Accuracy restricted to actual defect classes (excluding None).

    The paper reports 86% for the CNN vs 72% for the SVM on this
    metric (Sec. IV-C): of all test wafers whose true class is a
    defect, the fraction classified into their correct defect class.
    """
    matrix = np.asarray(matrix)
    names = list(class_names)
    if none_class not in names:
        raise ValueError(f"{none_class!r} not in class names")
    keep = [i for i, name in enumerate(names) if name != none_class]
    correct = sum(int(matrix[i, i]) for i in keep)
    total = int(matrix[keep, :].sum())
    if total == 0:
        return 0.0
    return correct / total
