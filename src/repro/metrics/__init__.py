"""Evaluation metrics for plain and selective classification."""

from .classification import (
    ClassMetrics,
    accuracy,
    confusion_matrix,
    defect_detection_rate,
    macro_f1,
    per_class_metrics,
)
from .reporting import format_confusion_matrix, format_percent, format_table
from .selective import (
    SelectiveClassReport,
    SelectiveEvaluation,
    evaluate_selective,
    per_class_coverage,
    selective_accuracy,
)

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_metrics",
    "macro_f1",
    "defect_detection_rate",
    "ClassMetrics",
    "SelectiveClassReport",
    "SelectiveEvaluation",
    "evaluate_selective",
    "selective_accuracy",
    "per_class_coverage",
    "format_table",
    "format_confusion_matrix",
    "format_percent",
]
